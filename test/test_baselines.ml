(* Baseline detectors: the exhaustive oracle's own behaviour, the sliding
   window, the chronological matcher's agreement with OCEP, the wait-for
   graph, the conflict-graph detector, and the vector-clock race checker. *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module History = Ocep.History
module Matcher = Ocep.Matcher
module Oracle = Ocep_baselines.Oracle
module Window = Ocep_baselines.Window
module Chrono = Ocep_baselines.Chrono
module Waitfor = Ocep_baselines.Waitfor
module Conflict_graph = Ocep_baselines.Conflict_graph
module Race_checker = Ocep_baselines.Race_checker
module Build = Testutil.Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let net_of src = Compile.compile (Parser.parse src)

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let oracle_counts_matches () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "A" in
  let _ = Build.internal b 0 "A" in
  let m, _ = Build.message b ~src:0 ~dst:1 in
  ignore m;
  let _ = Build.internal b 1 "B" in
  let _ = Build.internal b 1 "B" in
  (* 2 As x 2 Bs, all ordered through the message *)
  check_int "four matches" 4 (List.length (Oracle.all_matches ~net ~events:(Build.events b)))

let oracle_true_slots () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "A" in
  let _ = Build.message b ~src:0 ~dst:1 in
  let _ = Build.internal b 1 "B" in
  let slots = Oracle.true_slots (Oracle.all_matches ~net ~events:(Build.events b)) in
  check "slots" true (slots = [ (0, 0); (1, 1) ])

(* ------------------------------------------------------------------ *)
(* Chronological matcher agrees with OCEP                              *)
(* ------------------------------------------------------------------ *)

let chrono_agrees_with_matcher =
  QCheck.Test.make ~name:"chronological baseline finds a match iff OCEP does" ~count:80
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 11) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:25 prng in
      let poet, events = Testutil.ingest_all names raws in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let history = History.create net ~n_traces ~pruning:false () in
        List.iter
          (fun ev ->
            History.note_comm history ev;
            for i = 0 to Compile.size net - 1 do
              if Compile.leaf_matches net i ev then History.add history ~leaf:i ev
            done)
          events;
        List.for_all
          (fun ev ->
            List.for_all
              (fun leaf ->
                if not (Compile.leaf_matches net leaf ev) then true
                else begin
                  let ocep =
                    Matcher.search
                      ~net:(Compile.intern_net net ~intern:(Symbol.intern (Poet.symbols poet)))
                      ~history ~n_traces
                      ~trace_of_sym:(Poet.trace_of_sym poet)
                      ~partner_of:(Poet.find_partner poet) ~anchor_leaf:leaf ~anchor:ev ()
                  in
                  let chrono, _ =
                    Chrono.search ~net ~history ~n_traces ~anchor_leaf:leaf ~anchor:ev ()
                  in
                  match (ocep, chrono) with
                  | Matcher.Found _, Chrono.Found _ | Matcher.Not_found, Chrono.Not_found -> true
                  | _ -> false
                end)
              (List.init (Compile.size net) (fun i -> i)))
          events)

let chrono_explores_more () =
  (* the causal pruning saves work on a conjunction over a long history *)
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a; B $b; C $c;\n\
       pattern := $a -> $b && $b -> $c;"
  in
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  (* lots of As on P0, never causally before anything on P1 *)
  for _ = 1 to 40 do
    ignore (Build.internal b 0 "A");
    let m, _ = Build.send b ~src:0 () in
    ignore (Build.recv b ~dst:2 m)
  done;
  ignore (Build.internal b 1 "B");
  let cc = Build.internal b 2 "C" in
  let events = Build.events b in
  let history = History.create net ~n_traces:3 ~pruning:false () in
  List.iter
    (fun ev ->
      History.note_comm history ev;
      for i = 0 to Compile.size net - 1 do
        if Compile.leaf_matches net i ev then History.add history ~leaf:i ev
      done)
    events;
  let stats = Matcher.new_stats () in
  let poet = Build.poet b in
  let _ =
    Matcher.search
      ~net:(Compile.intern_net net ~intern:(Symbol.intern (Poet.symbols poet)))
      ~history ~n_traces:3
      ~trace_of_sym:(Poet.trace_of_sym poet)
      ~partner_of:(Poet.find_partner poet) ~anchor_leaf:2 ~anchor:cc ~stats ()
  in
  let _, chrono_nodes = Chrono.search ~net ~history ~n_traces:3 ~anchor_leaf:2 ~anchor:cc () in
  check "pruned search visits fewer candidates" true (stats.Matcher.nodes < chrono_nodes)

(* ------------------------------------------------------------------ *)
(* Wait-for graph                                                      *)
(* ------------------------------------------------------------------ *)

(* The string-based baselines never read the symbol fields, so these
   hand-built events carry no interning table. *)
let blocked tr dst_name =
  {
    Event.trace = tr;
    trace_name = "P" ^ string_of_int tr;
    index = 1;
    etype = "Blocked_Send";
    text = dst_name;
    tsym = -1;
    esym = -1;
    xsym = -1;
    kind = Event.Internal;
    vc = Vclock.make ~dim:4;
  }

let sent tr =
  {
    Event.trace = tr;
    trace_name = "P" ^ string_of_int tr;
    index = 2;
    etype = "MPI_Send";
    text = "";
    tsym = -1;
    esym = -1;
    xsym = -1;
    kind = Event.Send { msg = 1 };
    vc = Vclock.make ~dim:4;
  }

let trace_of_name n = Scanf.sscanf_opt n "P%d" (fun i -> i)

let waitfor_detects_cycle () =
  let w = Waitfor.create ~n_traces:4 ~trace_of_name `Incremental in
  check "no cycle yet" true (Waitfor.on_event w (blocked 0 "P1") = None);
  check "no cycle yet" true (Waitfor.on_event w (blocked 1 "P2") = None);
  (match Waitfor.on_event w (blocked 2 "P0") with
  | Some cycle -> check "cycle has all three" true (List.sort compare cycle = [ 0; 1; 2 ])
  | None -> Alcotest.fail "expected cycle");
  check_int "one detection" 1 (List.length (Waitfor.detections w))

let waitfor_send_clears_edge () =
  let w = Waitfor.create ~n_traces:4 ~trace_of_name `Incremental in
  ignore (Waitfor.on_event w (blocked 0 "P1"));
  ignore (Waitfor.on_event w (sent 0));
  check "edge cleared" true (Waitfor.on_event w (blocked 1 "P0") = None)

let waitfor_full_history_grows () =
  let w = Waitfor.create ~n_traces:4 ~trace_of_name `Full_history in
  ignore (Waitfor.on_event w (blocked 0 "P1"));
  ignore (Waitfor.on_event w (sent 0));
  ignore (Waitfor.on_event w (blocked 0 "P2"));
  check_int "edges accumulate" 2 (Waitfor.edges w);
  (* and stale edges can produce detections the incremental mode would not *)
  ignore (Waitfor.on_event w (blocked 2 "P1"));
  check "history cycle" true (Waitfor.on_event w (blocked 1 "P0") <> None)

(* ------------------------------------------------------------------ *)
(* Conflict graph (atomicity)                                          *)
(* ------------------------------------------------------------------ *)

let cs tr etype =
  {
    Event.trace = tr;
    trace_name = "P" ^ string_of_int tr;
    index = 1;
    etype;
    text = "";
    tsym = -1;
    esym = -1;
    xsym = -1;
    kind = Event.Internal;
    vc = Vclock.make ~dim:3;
  }

let conflict_graph_detects_overlap () =
  let d = Conflict_graph.create ~n_traces:3 () in
  check "enter 0" true (Conflict_graph.on_event d (cs 0 "CS_Enter") = []);
  let confl = Conflict_graph.on_event d (cs 1 "CS_Enter") in
  check "overlap detected" true (confl = [ (1, 0) ]);
  ignore (Conflict_graph.on_event d (cs 0 "CS_Exit"));
  ignore (Conflict_graph.on_event d (cs 1 "CS_Exit"));
  check "serialized ok" true (Conflict_graph.on_event d (cs 2 "CS_Enter") = []);
  check_int "one violation" 1 (List.length (Conflict_graph.violations d))

(* ------------------------------------------------------------------ *)
(* Race checker                                                        *)
(* ------------------------------------------------------------------ *)

let race_checker_finds_concurrent_sends () =
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let poet = Build.poet b in
  let checker = Race_checker.create ~n_traces:3 ~partner_of:(Poet.find_partner poet) () in
  (* two concurrent sends to P0 *)
  let m1, _ = Build.send b ~src:1 () in
  let m2, _ = Build.send b ~src:2 () in
  let r1 = Build.recv b ~dst:0 m1 in
  let r2 = Build.recv b ~dst:0 m2 in
  check "first recv no race" true (Race_checker.on_event checker r1 = []);
  check "second recv races" true (List.length (Race_checker.on_event checker r2) = 1);
  check_int "recorded" 1 (List.length (Race_checker.races checker))

let race_checker_ignores_ordered_sends () =
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let poet = Build.poet b in
  let checker = Race_checker.create ~n_traces:3 ~partner_of:(Poet.find_partner poet) () in
  (* P1 sends, P0 receives, P0 tells P2, then P2 sends: causally ordered *)
  let m1, _ = Build.send b ~src:1 () in
  let r1 = Build.recv b ~dst:0 m1 in
  let mt, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:2 mt in
  let m2, _ = Build.send b ~src:2 () in
  let r2 = Build.recv b ~dst:0 m2 in
  ignore (Race_checker.on_event checker r1);
  check "ordered sends do not race" true (Race_checker.on_event checker r2 = [])

(* ------------------------------------------------------------------ *)
(* Global-state lattice (Cooper-Marzullo)                              *)
(* ------------------------------------------------------------------ *)

module Lattice = Ocep_baselines.Lattice

let events_by_trace poet n =
  Array.init n (fun t -> Poet.events_on poet t)

let lattice_finds_concurrent_sections () =
  (* two causally concurrent critical sections that never overlap in the
     observed linearization: the interval detector misses them, the
     lattice (like OCEP) finds the unsafe reachable state *)
  let b = Build.create [| "P0"; "P1" |] in
  let e00 = Build.internal b 0 "CS_Enter" in
  let _ = Build.internal b 0 "CS_Exit" in
  let e10 = Build.internal b 1 "CS_Enter" in
  let _ = Build.internal b 1 "CS_Exit" in
  ignore (e00, e10);
  let cg = Conflict_graph.create ~n_traces:2 () in
  List.iter (fun ev -> ignore (Conflict_graph.on_event cg ev)) (Build.events b);
  check "interval detector misses it" true (Conflict_graph.violations cg = []);
  let r =
    Lattice.possibly
      ~events_by_trace:(events_by_trace (Build.poet b) 2)
      ~flag:(fun e -> Lattice.cs_flag e) ~threshold:2 ()
  in
  (match r.Lattice.outcome with
  | Lattice.Found cut -> check "both inside at the cut" true (cut = [| 1; 1 |])
  | _ -> Alcotest.fail "lattice should find the unsafe cut")

let lattice_respects_causality () =
  (* sections serialized through a message: no reachable unsafe state *)
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "CS_Enter" in
  let _ = Build.internal b 0 "CS_Exit" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let _ = Build.internal b 1 "CS_Enter" in
  let _ = Build.internal b 1 "CS_Exit" in
  let r =
    Lattice.possibly
      ~events_by_trace:(events_by_trace (Build.poet b) 2)
      ~flag:(fun e -> Lattice.cs_flag e) ~threshold:2 ()
  in
  check "not possible" true (r.Lattice.outcome = Lattice.Not_possible);
  (* the message prunes the lattice to exactly 7 consistent cuts:
     (i,0) for i in 0..3 and (3,j) for j in 1..3 *)
  Alcotest.(check int) "consistent cuts" 7 r.Lattice.cuts_explored

let lattice_budget () =
  (* an unsatisfiable predicate over a wide lattice exhausts the budget *)
  let b = Build.create (Array.init 6 (fun i -> "P" ^ string_of_int i)) in
  for _ = 1 to 12 do
    for t = 0 to 5 do
      ignore (Build.internal b t "Step")
    done
  done;
  let r =
    Lattice.possibly
      ~events_by_trace:(events_by_trace (Build.poet b) 6)
      ~flag:(fun e -> Lattice.cs_flag e) ~threshold:7 ~node_budget:10_000 ()
  in
  check "budget exhausted" true (r.Lattice.outcome = Lattice.Budget_exhausted);
  Alcotest.(check int) "exactly the budget" 10_000 r.Lattice.cuts_explored

(* ------------------------------------------------------------------ *)
(* Window                                                              *)
(* ------------------------------------------------------------------ *)

let window_reports_in_window_matches () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let w = Window.create ~net ~window:10 () in
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "A" in
  let _ = Build.message b ~src:0 ~dst:1 in
  let _ = Build.internal b 1 "B" in
  List.iter (fun ev -> ignore (Window.on_event w ev)) (Build.events b);
  check_int "one match" 1 (List.length (Window.matches w))

let window_misses_out_of_window () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let w = Window.create ~net ~window:4 () in
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "A" in
  let _ = Build.message b ~src:0 ~dst:1 in
  for _ = 1 to 10 do
    ignore (Build.internal b 0 "N")
  done;
  let _ = Build.internal b 1 "B" in
  List.iter (fun ev -> ignore (Window.on_event w ev)) (Build.events b);
  check_int "match missed" 0 (List.length (Window.matches w))

let window_matches_are_sound =
  QCheck.Test.make ~name:"window matches are a subset of the oracle's" ~count:60
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 909) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:25 prng in
      let _, events = Testutil.ingest_all names raws in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let w = Window.create ~net ~window:(n_traces * n_traces) () in
        List.iter (fun ev -> ignore (Window.on_event w ev)) events;
        let oracle = Oracle.all_matches ~net ~events in
        List.for_all
          (fun m -> List.exists (fun m' -> Array.for_all2 Event.equal m m') oracle)
          (Window.matches w))

let compound_singletons_equal_primitive_relations =
  QCheck.Test.make ~name:"classify on singletons = primitive relation" ~count:40
    QCheck.small_int (fun seed ->
      let module Compound = Ocep_pattern.Compound in
      let prng = Prng.create (seed + 515) in
      let n_traces = 2 + Prng.int prng 2 in
      let raws = Testutil.Gen.computation ~n_traces ~length:20 prng in
      let _, events = Testutil.ingest_all (Array.init n_traces (fun i -> "P" ^ string_of_int i)) raws in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Event.equal a b
              ||
              match (Event.relation a b, Compound.classify [ a ] [ b ]) with
              | Event.Before, Compound.A_before_B
              | Event.After, Compound.B_before_A
              | Event.Concurrent, Compound.Concurrent ->
                true
              | _ -> false)
            events)
        events)

let () =
  Alcotest.run "baselines"
    [
      ( "oracle",
        [
          Alcotest.test_case "counts matches" `Quick oracle_counts_matches;
          Alcotest.test_case "true slots" `Quick oracle_true_slots;
        ] );
      ( "chrono",
        [
          QCheck_alcotest.to_alcotest chrono_agrees_with_matcher;
          Alcotest.test_case "pruning saves work" `Quick chrono_explores_more;
        ] );
      ( "waitfor",
        [
          Alcotest.test_case "detects cycle" `Quick waitfor_detects_cycle;
          Alcotest.test_case "send clears edge" `Quick waitfor_send_clears_edge;
          Alcotest.test_case "full history mode" `Quick waitfor_full_history_grows;
        ] );
      ( "conflict graph",
        [ Alcotest.test_case "detects overlap" `Quick conflict_graph_detects_overlap ] );
      ( "race checker",
        [
          Alcotest.test_case "concurrent sends race" `Quick race_checker_finds_concurrent_sends;
          Alcotest.test_case "ordered sends do not" `Quick race_checker_ignores_ordered_sends;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "finds concurrent sections" `Quick lattice_finds_concurrent_sections;
          Alcotest.test_case "respects causality" `Quick lattice_respects_causality;
          Alcotest.test_case "budget" `Quick lattice_budget;
        ] );
      ( "window",
        [
          Alcotest.test_case "in-window match" `Quick window_reports_in_window_matches;
          Alcotest.test_case "out-of-window miss" `Quick window_misses_out_of_window;
          QCheck_alcotest.to_alcotest window_matches_are_sound;
        ] );
      ( "compound",
        [ QCheck_alcotest.to_alcotest compound_singletons_equal_primitive_relations ] );
    ]
