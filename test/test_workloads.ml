(* Integration: each case-study workload run end-to-end at small scale.
   These assert the paper's completeness metric — every injected violation
   detected, no false positives — plus workload-specific structure. *)

open Ocep_base
module Sim = Ocep_sim.Sim
module Runner = Ocep_harness.Runner
module Workload = Ocep_workloads.Workload
module Inject = Ocep_workloads.Inject

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run w = Runner.run w

let assert_complete name (o : Runner.outcome) =
  if o.Runner.injections_total = 0 then Alcotest.failf "%s: no injections materialized" name;
  check_int (name ^ ": all injected violations detected") o.Runner.injections_total
    o.Runner.injections_detected;
  check_int (name ^ ": no false positives") 0 o.Runner.false_reports;
  check (name ^ ": matches were reported") true (o.Runner.reports <> [])

let deadlock_small () =
  let w = Ocep_workloads.Random_walk.make ~traces:8 ~seed:3 ~max_events:15_000 () in
  let o = run w in
  assert_complete "deadlock" o;
  check "simulator recorded recoveries" true (o.Runner.sim.Sim.deadlocks <> []);
  (* every reported match is a 4-cycle of Blocked_Send events *)
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "four events" 4 (Array.length r.events);
      Array.iter (fun (e : Event.t) -> check "blocked send" true (e.etype = "Blocked_Send")) r.events;
      (* pairwise concurrent *)
      Array.iteri
        (fun i a ->
          Array.iteri (fun j b -> if i < j then check "concurrent" true (Event.concurrent a b)) r.events)
        r.events)
    o.Runner.reports

let msg_race_small () =
  let w = Ocep_workloads.Msg_race.make ~traces:6 ~seed:3 ~max_events:15_000 ~race_rate:0.05 () in
  let o = run w in
  assert_complete "races" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "two events" 2 (Array.length r.events);
      check "both sends to P0" true
        (Array.for_all (fun (e : Event.t) -> e.etype = "MPI_Send" && e.text = "P0") r.events);
      check "concurrent" true (Event.concurrent r.events.(0) r.events.(1)))
    o.Runner.reports

let atomicity_small () =
  let w = Ocep_workloads.Atomicity.make ~traces:6 ~seed:3 ~max_events:15_000 ~skip_rate:0.03 () in
  let o = run w in
  assert_complete "atomicity" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check "both entries" true (Array.for_all (fun (e : Event.t) -> e.etype = "CS_Enter") r.events);
      check "concurrent entries" true (Event.concurrent r.events.(0) r.events.(1)))
    o.Runner.reports

let ordering_small () =
  let w = Ocep_workloads.Ordering.make ~traces:6 ~seed:3 ~max_events:15_000 ~bug_rate:0.03 () in
  let o = run w in
  assert_complete "ordering" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      (* the Synch, Snapshot and Forward of one request id, in order *)
      let by_type ty =
        match Array.to_list r.events |> List.filter (fun (e : Event.t) -> e.etype = ty) with
        | [ e ] -> e
        | _ -> Alcotest.failf "expected exactly one %s" ty
      in
      let synch = by_type "Synch_Leader" in
      let snap = by_type "Take_Snapshot" in
      let upd = by_type "Make_Update" in
      let fwd = by_type "Forward_Snapshot" in
      check "same request id" true (synch.text = snap.text && snap.text = fwd.text);
      check "causal chain" true (Event.hb synch snap && Event.hb snap upd && Event.hb upd fwd))
    o.Runner.reports

(* ------------------------------------------------------------------ *)
(* Protocol bug corpus (PR 6)                                          *)
(* ------------------------------------------------------------------ *)

let twopc_small () =
  let w = Ocep_workloads.Twopc.make ~traces:6 ~seed:3 ~max_events:15_000 () in
  let o = run w in
  assert_complete "twopc" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "two events" 2 (Array.length r.events);
      let commit = r.events.(0) and abort = r.events.(1) in
      check "commit leaf" true (commit.Event.etype = "TX_Commit");
      check "abort leaf" true (abort.Event.etype = "TX_Abort");
      check "same transaction" true (commit.Event.text = abort.Event.text);
      check "concurrent decisions" true (Event.concurrent commit abort))
    o.Runner.reports

let election_small () =
  let w = Ocep_workloads.Election.make ~traces:6 ~seed:3 ~max_events:15_000 () in
  let o = run w in
  assert_complete "election" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "two events" 2 (Array.length r.events);
      check "both leaders" true
        (Array.for_all (fun (e : Event.t) -> e.Event.etype = "Become_Leader") r.events);
      check "same term" true (r.events.(0).Event.text = r.events.(1).Event.text);
      check "distinct nodes" true (r.events.(0).Event.trace <> r.events.(1).Event.trace);
      check "concurrent declarations" true (Event.concurrent r.events.(0) r.events.(1)))
    o.Runner.reports

let gossip_small () =
  let w = Ocep_workloads.Gossip.make ~traces:6 ~seed:3 ~max_events:15_000 () in
  let o = run w in
  assert_complete "gossip" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "two events" 2 (Array.length r.events);
      let update = r.events.(0) and stale = r.events.(1) in
      check "update leaf" true (update.Event.etype = "KV_Update");
      check "stale leaf" true (stale.Event.etype = "Stale_Serve");
      check "same version" true (update.Event.text = stale.Event.text);
      check "update reached the replica first" true (Event.hb update stale))
    o.Runner.reports

let lockserver_small () =
  let w = Ocep_workloads.Lockserver.make ~traces:6 ~seed:3 ~max_events:15_000 () in
  let o = run w in
  assert_complete "lockserver" o;
  List.iter
    (fun (r : Ocep.Subset.report) ->
      check_int "four events" 4 (Array.length r.events);
      (* leaves in declaration order: R1, R2, G2, G1 *)
      let r1 = r.events.(0) and r2 = r.events.(1) and g2 = r.events.(2) and g1 = r.events.(3) in
      check "request leaves" true
        (r1.Event.etype = "Lock_Request" && r2.Event.etype = "Lock_Request");
      check "grant leaves" true (g1.Event.etype = "Lock_Grant" && g2.Event.etype = "Lock_Grant");
      check "grants echo request ids" true
        (r1.Event.text = g1.Event.text && r2.Event.text = g2.Event.text);
      check "grants from the server" true (g1.Event.trace = 0 && g2.Event.trace = 0);
      check "requests in causal order" true (Event.hb r1 r2);
      check "grants causally inverted" true (Event.hb g2 g1))
    o.Runner.reports

let protocol_no_bug_no_matches () =
  List.iter
    (fun (name, (w : Workload.t)) ->
      let names = Sim.trace_names w.Workload.sim_config in
      let poet = Ocep_poet.Poet.create ~trace_names:names () in
      let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
      let engine = Ocep.Engine.create ~net ~poet () in
      let _ =
        Sim.run w.Workload.sim_config
          ~sink:(fun raw -> ignore (Ocep_poet.Poet.ingest poet raw))
          ~bodies:w.Workload.bodies
      in
      check_int (name ^ ": no matches at all") 0 (Ocep.Engine.matches_found engine))
    [
      ("twopc", Ocep_workloads.Twopc.make ~traces:5 ~seed:5 ~max_events:8_000 ~crash_rate:0. ());
      ( "election",
        Ocep_workloads.Election.make ~traces:5 ~seed:5 ~max_events:8_000 ~split_rate:0. () );
      ("gossip", Ocep_workloads.Gossip.make ~traces:5 ~seed:5 ~max_events:8_000 ~stale_rate:0. ());
      ( "lockserver",
        Ocep_workloads.Lockserver.make ~traces:5 ~seed:5 ~max_events:8_000 ~barge_rate:0. () );
    ]

let atomicity_no_bug_no_matches () =
  (* with a zero skip rate the protected section never produces a match *)
  let w = Ocep_workloads.Atomicity.make ~traces:5 ~seed:5 ~max_events:10_000 ~skip_rate:0. () in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Ocep_poet.Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let engine = Ocep.Engine.create ~net ~poet () in
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Ocep_poet.Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  check_int "no matches at all" 0 (Ocep.Engine.matches_found engine)

let ordering_no_bug_no_matches () =
  let w = Ocep_workloads.Ordering.make ~traces:5 ~seed:5 ~max_events:10_000 ~bug_rate:0. () in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Ocep_poet.Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let engine = Ocep.Engine.create ~net ~poet () in
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Ocep_poet.Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  check_int "no matches at all" 0 (Ocep.Engine.matches_found engine)

let deadlock_matches_sim_ground_truth () =
  (* the simulator's own stall log and the injection plan agree *)
  let w = Ocep_workloads.Random_walk.make ~traces:8 ~seed:11 ~max_events:15_000 () in
  let o = run w in
  check "at least one recovery" true (List.length o.Runner.sim.Sim.deadlocks >= 1);
  List.iter
    (fun (d : Sim.deadlock) ->
      check_int "cycle of four blocked senders" 4 (List.length d.Sim.participants))
    o.Runner.sim.Sim.deadlocks

let injections_record_parts () =
  let w = Ocep_workloads.Ordering.make ~traces:4 ~seed:2 ~max_events:8_000 ~bug_rate:0.05 () in
  let _ = run w in
  let complete = Inject.complete w.Workload.inject in
  check "some complete injections" true (complete <> []);
  List.iter
    (fun (inj : Inject.injection) ->
      check_int "four parts" 4 (List.length inj.Inject.parts);
      check_int "four resolved" 4 (List.length inj.Inject.resolved))
    complete

let deadlock_cycle_length_knob () =
  List.iter
    (fun cycle_len ->
      let w =
        Ocep_workloads.Random_walk.make ~traces:8 ~seed:9 ~max_events:12_000 ~cycle_len ()
      in
      let o = run w in
      if o.Runner.injections_total > 0 then begin
        check_int
          (Printf.sprintf "cycle %d fully detected" cycle_len)
          o.Runner.injections_total o.Runner.injections_detected;
        List.iter
          (fun (r : Ocep.Subset.report) ->
            check_int "match size = cycle length" cycle_len (Array.length r.events))
          o.Runner.reports
      end)
    [ 2; 3; 5 ];
  match Ocep_workloads.Random_walk.make ~traces:8 ~seed:9 ~max_events:100 ~cycle_len:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle length 1 rejected"

let workloads_deterministic () =
  let once () =
    let w = Ocep_workloads.Msg_race.make ~traces:5 ~seed:21 ~max_events:5_000 () in
    let log = ref [] in
    let _ = Sim.run w.Workload.sim_config ~sink:(fun r -> log := r :: !log) ~bodies:w.Workload.bodies in
    List.rev !log
  in
  check "same stream twice" true (once () = once ())

(* ------------------------------------------------------------------ *)
(* Inject bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let inject_counters () =
  let inj = Inject.create () in
  check_int "first occurrence" 1 (Inject.next_occurrence inj ~trace:0 ~etype:"E");
  check_int "second occurrence" 2 (Inject.next_occurrence inj ~trace:0 ~etype:"E");
  check_int "other type independent" 1 (Inject.next_occurrence inj ~trace:0 ~etype:"F");
  check_int "other trace independent" 1 (Inject.next_occurrence inj ~trace:1 ~etype:"E")

let inject_resolution () =
  let inj = Inject.create () in
  let id = Inject.new_injection inj ~expected_parts:2 in
  (* the 2nd E on trace 0 and the 1st F on trace 1 constitute the violation *)
  Inject.add_part inj ~id ~trace:0 ~etype:"E" ~nth:2;
  Inject.add_part inj ~id ~trace:1 ~etype:"F" ~nth:1;
  let ev trace etype index =
    {
      Event.trace;
      trace_name = "P" ^ string_of_int trace;
      index;
      etype;
      text = "";
      tsym = -1;
      esym = -1;
      xsym = -1;
      kind = Event.Internal;
      vc = Vclock.make ~dim:2;
    }
  in
  check "first E does not resolve" true (Inject.resolve inj (ev 0 "E" 1) = None);
  check "second E resolves" true (Inject.resolve inj (ev 0 "E" 2) <> None);
  check_int "not yet complete" 0 (List.length (Inject.complete inj));
  check "first F resolves" true (Inject.resolve inj (ev 1 "F" 1) <> None);
  (match Inject.complete inj with
  | [ i ] ->
    check_int "two resolved events" 2 (List.length i.Inject.resolved);
    check_int "id" id i.Inject.inj_id
  | _ -> Alcotest.fail "expected one complete injection")

(* ------------------------------------------------------------------ *)
(* parse_faults strictness                                             *)
(* ------------------------------------------------------------------ *)

let parse_faults_valid () =
  let ok s f =
    match Inject.parse_faults s with
    | Ok got -> check (Printf.sprintf "parse %S" s) true (got = f)
    | Error e -> Alcotest.failf "parse %S: unexpected error %s" s e
  in
  ok "" Inject.no_faults;
  ok "none" Inject.no_faults;
  ok "reorder:8" { Inject.no_faults with Inject.f_reorder = 8 };
  ok "dup:0.5,drop:1" { Inject.no_faults with Inject.f_dup = 0.5; f_drop = 1. };
  ok "reorder:8, dup:0.5" { Inject.no_faults with Inject.f_reorder = 8; f_dup = 0.5 };
  ok "  drop:0  " Inject.no_faults;
  ok "reorder:0,dup:0,drop:0" Inject.no_faults

let parse_faults_malformed () =
  let rejected s needle =
    match Inject.parse_faults s with
    | Ok _ -> Alcotest.failf "parse %S: expected an error" s
    | Error e ->
      let has_needle =
        let nl = String.length needle and el = String.length e in
        let rec go i = i + nl <= el && (String.sub e i nl = needle || go (i + 1)) in
        go 0
      in
      if not has_needle then Alcotest.failf "parse %S: error %S lacks %S" s e needle
  in
  rejected "dup:1.5" "out of range";
  rejected "drop:-0.1" "out of range";
  rejected "dup:x" "expected a float";
  rejected "reorder:-4" "non-negative";
  rejected "reorder:4.5" "non-negative int";
  rejected "jitter:3" "unknown fault";
  rejected "reorder" "expected key:value";
  rejected "dup:0.1,dup:0.2" "duplicate key";
  rejected "reorder:2,," "expected key:value";
  (* the spec itself is named in the message for flag-error context *)
  rejected "dup:1.5" "\"dup:1.5\""

let () =
  Alcotest.run "workloads"
    [
      ( "case studies",
        [
          Alcotest.test_case "deadlock" `Slow deadlock_small;
          Alcotest.test_case "message race" `Slow msg_race_small;
          Alcotest.test_case "atomicity" `Slow atomicity_small;
          Alcotest.test_case "ordering" `Slow ordering_small;
        ] );
      ( "protocol corpus",
        [
          Alcotest.test_case "two-phase commit" `Slow twopc_small;
          Alcotest.test_case "leader election" `Slow election_small;
          Alcotest.test_case "gossip" `Slow gossip_small;
          Alcotest.test_case "lock server" `Slow lockserver_small;
          Alcotest.test_case "no bug, no matches" `Slow protocol_no_bug_no_matches;
        ] );
      ( "negative controls",
        [
          Alcotest.test_case "atomicity without bug" `Slow atomicity_no_bug_no_matches;
          Alcotest.test_case "ordering without bug" `Slow ordering_no_bug_no_matches;
        ] );
      ( "inject",
        [
          Alcotest.test_case "occurrence counters" `Quick inject_counters;
          Alcotest.test_case "resolution" `Quick inject_resolution;
          Alcotest.test_case "parse_faults valid" `Quick parse_faults_valid;
          Alcotest.test_case "parse_faults malformed" `Quick parse_faults_malformed;
        ] );
      ( "ground truth",
        [
          Alcotest.test_case "sim deadlock log" `Slow deadlock_matches_sim_ground_truth;
          Alcotest.test_case "injection parts" `Slow injections_record_parts;
          Alcotest.test_case "determinism" `Quick workloads_deterministic;
          Alcotest.test_case "cycle length knob" `Slow deadlock_cycle_length_knob;
        ] );
    ]
