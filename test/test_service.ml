(* The service tier: multi-tenant digest parity with dedicated engines,
   quota isolation, mid-stream control-plane edits against a
   restart-free oracle, and the typed error channel over the wire. *)

open Ocep_base
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Admission = Ocep_ingest.Admission
module Bqueue = Ocep_ingest.Bqueue
module Session = Ocep_ingest.Session
module Server = Ocep_service.Server
module Client = Ocep_service.Client
module Control = Ocep_service.Control
module Serve = Ocep_obs.Serve

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let with_temp f =
  let tmp = Filename.temp_file "ocep_service_test" ".wire" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () -> f tmp

let record_to ~path (w : Workload.t) =
  let names = Sim.trace_names w.Workload.sim_config in
  let oc = open_out_bin path in
  let wr = Framing.create_writer oc ~trace_names:names in
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> ignore (Framing.write_raw wr raw))
       ~bodies:w.Workload.bodies);
  Framing.flush wr;
  close_out oc

let read_stream path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Framing.create_reader ic in
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    match Framing.next r with
    | Framing.Frame w -> frames := w :: !frames
    | Framing.Crc_error | Framing.Bad_frame _ -> ()
    | Framing.Truncated | Framing.Eof -> continue := false
  done;
  (Framing.reader_trace_names r, List.rev !frames)

(* mirror the server's per-tenant engine + admission settings exactly *)
let engine_cfg = { Engine.default_config with Engine.latency_sink = Engine.Histogram }
let session_cfg = Server.default_config.Server.session

let oracle_digest ~patterns path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let reader = Framing.create_reader ic in
  let poet = Poet.create ~trace_names:(Framing.reader_trace_names reader) () in
  let engine = Engine.create ~config:engine_cfg ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  List.iter (fun net -> ignore (Engine.add_pattern engine net)) patterns;
  ignore (Session.replay ~config:session_cfg ~engine reader);
  Engine.reports_digest engine

let with_server ?config f =
  let srv = Server.start ?config () in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () -> f srv

let ok_or_fail what = function
  | Result.Ok v -> v
  | Result.Error e -> Alcotest.failf "%s: unexpected error %s" what (Ocep_error.to_string e)

let connect srv ~tenant ~traces ?quota ?policy () =
  ok_or_fail "connect"
    (Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) ~tenant ~traces ?quota ?policy ())

let stream_frames client frames = List.iter (Client.send client) frames

(* ------------------------------------------------------------------ *)
(* Digest parity: two concurrent tenants vs dedicated engines          *)
(* ------------------------------------------------------------------ *)

let two_tenant_parity () =
  let wa = Cases.make "races" ~traces:4 ~seed:11 ~max_events:1500 in
  let wb = Cases.make "atomicity" ~traces:4 ~seed:12 ~max_events:1500 in
  with_temp @@ fun pa ->
  with_temp @@ fun pb ->
  record_to ~path:pa wa;
  record_to ~path:pb wb;
  let net_a = Compile.compile (Parser.parse wa.Workload.pattern) in
  let net_b = Compile.compile (Parser.parse wb.Workload.pattern) in
  let oracle_a = oracle_digest ~patterns:[ net_a ] pa in
  let oracle_b = oracle_digest ~patterns:[ net_b ] pb in
  check "distinct workloads give distinct digests" true (oracle_a <> oracle_b);
  with_server @@ fun srv ->
  let run name path pattern out =
    let traces, frames = read_stream path in
    let c = connect srv ~tenant:name ~traces () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    ignore (ok_or_fail "attach" (Client.attach c ~name:"p" ~source:pattern));
    stream_frames c frames;
    let st = ok_or_fail "drain" (Client.drain c) in
    out := Some (st, List.length frames)
  in
  let ra = ref None and rb = ref None in
  let ta = Thread.create (fun () -> run "tenant-a" pa wa.Workload.pattern ra) () in
  let tb = Thread.create (fun () -> run "tenant-b" pb wb.Workload.pattern rb) () in
  Thread.join ta;
  Thread.join tb;
  (match (!ra, !rb) with
  | Some (sa, na), Some (sb, nb) ->
    checks "tenant A digest matches dedicated engine" oracle_a sa.Control.digest;
    checks "tenant B digest matches dedicated engine" oracle_b sb.Control.digest;
    checki "tenant A admitted everything" na sa.Control.admitted;
    checki "tenant B admitted everything" nb sb.Control.admitted;
    checki "tenant A shed nothing" 0 sa.Control.shed;
    checki "tenant B shed nothing" 0 sb.Control.shed
  | _ -> Alcotest.fail "a client did not finish");
  (* unregistration is asynchronous: the conn thread notices EOF after
     the client's close returns *)
  let rec wait_gone retries =
    if Server.tenant_count srv = 0 then ()
    else if retries = 0 then
      checki "tenants unregistered at close" 0 (Server.tenant_count srv)
    else begin
      Thread.delay 0.02;
      wait_gone (retries - 1)
    end
  in
  wait_gone 150

(* ------------------------------------------------------------------ *)
(* Quota isolation: a shedding tenant degrades only itself             *)
(* ------------------------------------------------------------------ *)

let quota_shed_isolated () =
  let wa = Cases.make "races" ~traces:4 ~seed:21 ~max_events:1200 in
  let wb = Cases.make "races" ~traces:4 ~seed:22 ~max_events:1200 in
  with_temp @@ fun pa ->
  with_temp @@ fun pb ->
  record_to ~path:pa wa;
  record_to ~path:pb wb;
  let net = Compile.compile (Parser.parse wa.Workload.pattern) in
  let oracle_b = oracle_digest ~patterns:[ net ] pb in
  (* what a tenant that admitted nothing reports: pattern attached, zero
     events *)
  let empty_digest =
    let poet = Poet.create ~trace_names:(Sim.trace_names wa.Workload.sim_config) () in
    let engine = Engine.create ~config:engine_cfg ~net ~poet () in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    Engine.reports_digest engine
  in
  with_server @@ fun srv ->
  let run name path ?quota ?policy out =
    let traces, frames = read_stream path in
    let c = connect srv ~tenant:name ~traces ?quota ?policy () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    ignore (ok_or_fail "attach" (Client.attach c ~name:"p" ~source:wa.Workload.pattern));
    stream_frames c frames;
    let st = ok_or_fail "drain" (Client.drain c) in
    out := Some (st, List.length frames)
  in
  let ra = ref None and rb = ref None in
  let ta =
    Thread.create (fun () -> run "shedder" pa ~quota:0 ~policy:Bqueue.Shed ra) ()
  in
  let tb = Thread.create (fun () -> run "bystander" pb rb) () in
  Thread.join ta;
  Thread.join tb;
  match (!ra, !rb) with
  | Some (sa, na), Some (sb, _) ->
    checki "shedder admitted nothing" 0 sa.Control.admitted;
    checki "shedder shed every frame" na sa.Control.shed;
    checks "shedder digest is the empty-engine digest" empty_digest sa.Control.digest;
    checks "bystander digest untouched by the shedding tenant" oracle_b sb.Control.digest;
    checki "bystander shed nothing" 0 sb.Control.shed
  | _ -> Alcotest.fail "a client did not finish"

(* ------------------------------------------------------------------ *)
(* ATTACH/DETACH mid-stream vs a restart-free oracle                   *)
(* ------------------------------------------------------------------ *)

(* The oracle drives one dedicated engine through the same admission
   layer and performs the same registry edits at the same stream
   positions — no restart, exactly what the shard does. *)
let oracle_midstream ~traces ~frames ~net ~k1 ~k2 ~k3 =
  let poet = Poet.create ~trace_names:traces () in
  let engine = Engine.create ~config:engine_cfg ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let adm =
    Admission.create
      ~config:
        {
          Admission.reorder_window = session_cfg.Session.reorder_window;
          gap_policy = session_cfg.Session.gap_policy;
        }
      ~n_traces:(Array.length traces)
      ~emit:(fun ~verdict ~decode_us:_ ~admit_us:_ w ->
        ignore (Engine.feed_wire engine ~id:w.Wire.id ~verdict (Wire.to_raw w)))
      ()
  in
  let h1 = ref None in
  List.iteri
    (fun i w ->
      if i = k1 then h1 := Some (Engine.add_pattern engine net);
      if i = k2 then ignore (Engine.add_pattern engine net);
      if i = k3 then
        Engine.remove_pattern engine (Engine.Handle.id (Option.get !h1));
      Admission.push adm w)
    frames;
  Admission.finish adm;
  Engine.reports_digest engine

let attach_detach_midstream () =
  let w = Cases.make "races" ~traces:4 ~seed:31 ~max_events:1800 in
  with_temp @@ fun path ->
  record_to ~path w;
  let traces, frames = read_stream path in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let n = List.length frames in
  let k1 = n / 4 and k2 = n / 2 and k3 = 3 * n / 4 in
  let oracle = oracle_midstream ~traces ~frames ~net ~k1 ~k2 ~k3 in
  with_server @@ fun srv ->
  let c = connect srv ~tenant:"editor" ~traces () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let first = ref None in
  List.iteri
    (fun i fr ->
      if i = k1 then
        first := Some (ok_or_fail "attach 1" (Client.attach c ~name:"p1" ~source:w.Workload.pattern));
      if i = k2 then
        ignore (ok_or_fail "attach 2" (Client.attach c ~name:"p2" ~source:w.Workload.pattern));
      if i = k3 then
        ok_or_fail "detach"
          (Client.detach c ~pattern:(string_of_int (Option.get !first)));
      Client.send c fr)
    frames;
  let st = ok_or_fail "drain" (Client.drain c) in
  checks "mid-stream edits match the restart-free oracle" oracle st.Control.digest;
  checki "everything admitted" n st.Control.admitted;
  (* detach by attach-name exercises the name path too *)
  match Client.detach c ~pattern:"p2" with
  | Result.Error (Ocep_error.Drained _) -> ()
  | Result.Ok () -> Alcotest.fail "detach after drain should report Drained"
  | Result.Error e -> Alcotest.failf "want Drained, got %s" (Ocep_error.to_string e)

(* ------------------------------------------------------------------ *)
(* The typed error channel over the wire                               *)
(* ------------------------------------------------------------------ *)

let raw_exchange ~port ~traces reqs =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let wr = Framing.create_writer oc ~trace_names:traces in
  List.iter (fun f -> Framing.write wr f) reqs;
  Framing.flush wr;
  let rd = Framing.create_reader ic in
  match Framing.next rd with
  | Framing.Frame w -> (
    match Control.parse_response w with
    | Result.Ok r -> r
    | Result.Error e -> Alcotest.failf "undecodable response: %s" (Ocep_error.to_string e))
  | _ -> Alcotest.fail "no response frame"

let expect_err what pred = function
  | Result.Error e when pred e -> ()
  | Result.Error e -> Alcotest.failf "%s: wrong error %s" what (Ocep_error.to_string e)
  | Result.Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" what

let wire_errors () =
  let traces = [| "P0"; "P1" |] in
  let config = { Server.default_config with Server.max_patterns = 1 } in
  with_server ~config @@ fun srv ->
  let port = Server.port srv in
  (* a request before HELLO: Unknown_tenant *)
  (match raw_exchange ~port ~traces [ Control.request_frame ~seq:0 Control.Stats ] with
  | Control.Err (Ocep_error.Unknown_tenant _) -> ()
  | r -> Alcotest.failf "stats before hello: %s" (match r with
      | Control.Ok _ -> "ok?" | Control.Err e -> Ocep_error.to_string e));
  (* a data frame before HELLO too *)
  (match
     raw_exchange ~port ~traces
       [ { Wire.id = 0; trace = 0; seq = 1; etype = "x"; text = ""; kind = Event.Internal } ]
   with
  | Control.Err (Ocep_error.Unknown_tenant _) -> ()
  | _ -> Alcotest.fail "data before hello should be Unknown_tenant");
  (* quota above the server cap: Quota_exceeded at HELLO *)
  (match
     Client.connect ~host:"127.0.0.1" ~port ~tenant:"greedy" ~traces
       ~quota:(Server.default_config.Server.tenant_quota + 1) ()
   with
  | Result.Error (Ocep_error.Quota_exceeded { what = "events"; _ }) -> ()
  | Result.Error e -> Alcotest.failf "quota override: %s" (Ocep_error.to_string e)
  | Result.Ok c -> Client.close c; Alcotest.fail "quota override above cap accepted");
  (* quota 0 under block: Bad_request at HELLO *)
  (match
     Client.connect ~host:"127.0.0.1" ~port ~tenant:"stuck" ~traces ~quota:0
       ~policy:Bqueue.Block ()
   with
  | Result.Error (Ocep_error.Bad_request _) -> ()
  | Result.Error e -> Alcotest.failf "quota 0 block: %s" (Ocep_error.to_string e)
  | Result.Ok c -> Client.close c; Alcotest.fail "quota 0 block accepted");
  let c = connect srv ~tenant:"t" ~traces () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* duplicate tenant name: Bad_request *)
  (match Client.connect ~host:"127.0.0.1" ~port ~tenant:"t" ~traces () with
  | Result.Error (Ocep_error.Bad_request _) -> ()
  | Result.Error e -> Alcotest.failf "duplicate tenant: %s" (Ocep_error.to_string e)
  | Result.Ok c2 -> Client.close c2; Alcotest.fail "duplicate tenant accepted");
  (* parse and compile failures come back typed *)
  expect_err "bad syntax"
    (function Ocep_error.Parse_error _ -> true | _ -> false)
    (Client.attach c ~name:"bad" ~source:"pattern :=");
  expect_err "undefined class"
    (function Ocep_error.Parse_error _ -> true | _ -> false)
    (Client.attach c ~name:"bad2" ~source:"A := [_, A, _]; pattern := B;");
  expect_err "self-constraint"
    (function Ocep_error.Compile_error _ -> true | _ -> false)
    (Client.attach c ~name:"bad3" ~source:"A := [_, A, _]; A $x; pattern := $x -> $x;");
  expect_err "unknown pattern"
    (function Ocep_error.Unknown_pattern _ -> true | _ -> false)
    (Client.detach c ~pattern:"nope");
  ignore
    (ok_or_fail "attach" (Client.attach c ~name:"p" ~source:"A := [_, Quiet, _]; pattern := A;"));
  (* the per-tenant pattern cap: Quota_exceeded what="patterns" *)
  expect_err "pattern cap"
    (function
      | Ocep_error.Quota_exceeded { what = "patterns"; limit = 1; _ } -> true | _ -> false)
    (Client.attach c ~name:"q" ~source:"A := [_, Quiet, _]; pattern := A;");
  (* double detach by id: the engine's typed Unknown_pattern crosses the wire *)
  ok_or_fail "detach p" (Client.detach c ~pattern:"p");
  expect_err "detach again"
    (function Ocep_error.Unknown_pattern _ -> true | _ -> false)
    (Client.detach c ~pattern:"0");
  (* a frame whose trace id is outside the declared table poisons the
     stream with Trace_mismatch *)
  Client.send c
    { Wire.id = 0; trace = 9; seq = 1; etype = "x"; text = ""; kind = Event.Internal };
  Client.flush c;
  let rec wait_poisoned retries =
    match Client.stats c with
    | Result.Error (Ocep_error.Trace_mismatch _) -> ()
    | Result.Ok _ when retries > 0 ->
      Thread.delay 0.02;
      wait_poisoned (retries - 1)
    | Result.Ok _ -> Alcotest.fail "out-of-range trace id went unnoticed"
    | Result.Error e -> Alcotest.failf "trace mismatch: %s" (Ocep_error.to_string e)
  in
  wait_poisoned 100

let drained_after_drain () =
  let traces = [| "P0" |] in
  with_server @@ fun srv ->
  let c = connect srv ~tenant:"d" ~traces () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let st = ok_or_fail "drain" (Client.drain c) in
  checki "nothing admitted" 0 st.Control.admitted;
  expect_err "attach after drain"
    (function Ocep_error.Drained _ -> true | _ -> false)
    (Client.attach c ~name:"p" ~source:"A := [_, A, _]; pattern := A;");
  (* STATS still answers after a drain *)
  let st2 = ok_or_fail "stats after drain" (Client.stats c) in
  checks "digest stable after drain" st.Control.digest st2.Control.digest

(* ------------------------------------------------------------------ *)
(* Error and control codecs                                            *)
(* ------------------------------------------------------------------ *)

let all_errors =
  [
    Ocep_error.Stale_handle { pattern = 3 };
    Ocep_error.Unknown_pattern "17";
    Ocep_error.Unknown_tenant "t";
    Ocep_error.Quota_exceeded { tenant = "t"; what = "events"; limit = 42 };
    Ocep_error.Trace_mismatch "want [P0], got [P1]";
    Ocep_error.Parse_error "line 1: syntax";
    Ocep_error.Compile_error "undefined class: B";
    Ocep_error.Decode_error "trailing garbage";
    Ocep_error.Bad_request "no";
    Ocep_error.Drained "t";
  ]

let error_codec () =
  List.iter
    (fun e ->
      check
        (Printf.sprintf "round-trip %s" (Ocep_error.code e))
        true
        (Ocep_error.decode (Ocep_error.encode e) = e))
    all_errors;
  (* unknown codes degrade to Decode_error, readably *)
  (match Ocep_error.decode "from-the-future\x00detail" with
  | Ocep_error.Decode_error m -> check "alien code named" true (String.length m > 0)
  | _ -> Alcotest.fail "alien code should decode as Decode_error");
  (* every error crosses a control response frame intact *)
  List.iter
    (fun e ->
      match Control.parse_response (Control.response_frame ~seq:9 (Control.Err e)) with
      | Result.Ok (Control.Err e') ->
        check (Printf.sprintf "wire round-trip %s" (Ocep_error.code e)) true (e = e')
      | _ -> Alcotest.fail "error response did not round-trip")
    all_errors

let control_codec () =
  let reqs =
    [
      Control.Hello { tenant = "t"; quota = Some 7; policy = Some Bqueue.Shed };
      Control.Hello { tenant = "t"; quota = None; policy = None };
      Control.Attach { name = "p"; source = "A := [_, A, _]; pattern := A;" };
      Control.Detach { pattern = "3" };
      Control.Stats;
      Control.Drain;
    ]
  in
  List.iteri
    (fun i req ->
      let fr = Control.request_frame ~seq:i req in
      check "request frame is control" true (Control.is_control fr);
      match Control.parse_request fr with
      | Result.Ok req' -> check (Printf.sprintf "request %d round-trips" i) true (req = req')
      | Result.Error e -> Alcotest.failf "request %d: %s" i (Ocep_error.to_string e))
    reqs;
  let st = { Control.frames = 5; admitted = 4; shed = 1; matches = 2; digest = "abcd" } in
  (match
     Control.parse_response (Control.response_frame ~seq:0 (Control.Ok (Control.stats_fields st)))
   with
  | Result.Ok (Control.Ok fields) -> (
    match Control.parse_stats fields with
    | Result.Ok st' -> check "stats round-trip" true (st = st')
    | Result.Error e -> Alcotest.failf "stats: %s" (Ocep_error.to_string e))
  | _ -> Alcotest.fail "ok response did not round-trip");
  (* malformed payloads answer typed decode errors *)
  (match
     Control.parse_request
       { Wire.id = 0; trace = 0; seq = 0; etype = Control.ctl_etype; text = "NOPE";
         kind = Event.Internal }
   with
  | Result.Error (Ocep_error.Decode_error _) -> ()
  | _ -> Alcotest.fail "unknown opcode should be Decode_error");
  match
    Control.parse_request
      { Wire.id = 0; trace = 0; seq = 0; etype = Control.ctl_etype;
        text = "HELLO\x00t\x00-4\x00"; kind = Event.Internal }
  with
  | Result.Error (Ocep_error.Bad_request _) -> ()
  | _ -> Alcotest.fail "negative quota should be Bad_request"

(* ------------------------------------------------------------------ *)
(* Per-tenant metrics over the HTTP endpoint                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let metrics_endpoint () =
  let w = Cases.make "races" ~traces:4 ~seed:41 ~max_events:600 in
  with_temp @@ fun path ->
  record_to ~path w;
  let traces, frames = read_stream path in
  let config = { Server.default_config with Server.metrics_port = Some 0 } in
  with_server ~config @@ fun srv ->
  let mport = match Server.metrics_port srv with Some p -> p | None -> Alcotest.fail "no port" in
  let c = connect srv ~tenant:"mt" ~traces () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (ok_or_fail "attach" (Client.attach c ~name:"p" ~source:w.Workload.pattern));
  stream_frames c frames;
  let st = ok_or_fail "drain" (Client.drain c) in
  checki "all admitted" (List.length frames) st.Control.admitted;
  (* the publisher refreshes a few times a second; wait for the tenant's
     series to appear *)
  let rec scrape retries =
    let status, body = Serve.http_get ~host:"127.0.0.1" ~port:mport ~path:"/metrics" () in
    if
      status = 200
      && contains ~needle:(Printf.sprintf "ocep_tenant_events_total{tenant=\"mt\"} %d"
                             st.Control.admitted)
           body
    then body
    else if retries = 0 then
      Alcotest.failf "tenant series missing after drain (status %d):\n%s" status body
    else begin
      Thread.delay 0.1;
      scrape (retries - 1)
    end
  in
  let body = scrape 30 in
  check "shard depth gauge present" true (contains ~needle:"ocep_shard_queue_depth" body);
  check "tenant gauge present" true (contains ~needle:"ocep_service_tenants" body)

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "typed errors round-trip" `Quick error_codec;
          Alcotest.test_case "control frames round-trip" `Quick control_codec;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "two tenants, digest parity" `Quick two_tenant_parity;
          Alcotest.test_case "quota shed isolates" `Quick quota_shed_isolated;
          Alcotest.test_case "attach/detach mid-stream" `Quick attach_detach_midstream;
        ] );
      ( "errors",
        [
          Alcotest.test_case "typed errors over the wire" `Quick wire_errors;
          Alcotest.test_case "drain freezes the stream" `Quick drained_after_drain;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "per-tenant metrics endpoint" `Quick metrics_endpoint ] );
    ]
