(* The ingestion subsystem: wire-codec round-trips, framed-stream damage
   recovery, admission under degraded delivery, queue backpressure, and
   the headline property — replay through admission under bounded
   reorder and duplication is bit-identical to pristine in-process
   delivery on every case workload, sequential and parallel. *)

open Ocep_base
module Wire = Ocep_ingest.Wire
module Crc32 = Ocep_ingest.Crc32
module Framing = Ocep_ingest.Framing
module Admission = Ocep_ingest.Admission
module Bqueue = Ocep_ingest.Bqueue
module Source = Ocep_ingest.Source
module Session = Ocep_ingest.Session
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Sim = Ocep_sim.Sim
module Workload = Ocep_workloads.Workload
module Inject = Ocep_workloads.Inject
module Cases = Ocep_harness.Cases
module Runner = Ocep_harness.Runner

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

(* the standard check value: CRC-32/ISO-HDLC of "123456789" *)
let crc_check_value () =
  check "check value" true (Crc32.string "123456789" = 0xCBF43926l);
  check "empty" true (Crc32.string "" = 0l);
  let b = Bytes.of_string "xx123456789yy" in
  check "slice" true (Crc32.bytes b ~pos:2 ~len:9 = 0xCBF43926l)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let roundtrip w =
  let b = Buffer.create 64 in
  Wire.encode b w;
  let s = Buffer.to_bytes b in
  Wire.decode s ~pos:0 ~len:(Bytes.length s)

let codec_message_ids () =
  (* spill-range, negative and huge message ids all survive the zigzag
     varint; Internal carries no id at all *)
  List.iter
    (fun msg ->
      List.iter
        (fun kind ->
          let w =
            { Wire.id = 123; trace = 2; seq = 7; etype = "lock_acquire"; text = "r-1"; kind }
          in
          check (Printf.sprintf "msg %d" msg) true (roundtrip w = w))
        [ Event.Send { msg }; Event.Receive { msg } ])
    [ -5; 0; 1; Poet.dense_capacity - 1; Poet.dense_capacity; 1 lsl 40 ];
  let w = { Wire.id = 0; trace = 0; seq = 1; etype = "t"; text = ""; kind = Event.Internal } in
  check "internal" true (roundtrip w = w)

let codec_strings () =
  List.iter
    (fun (etype, text) ->
      let w = { Wire.id = 9; trace = 1; seq = 3; etype; text; kind = Event.Internal } in
      check "string roundtrip" true (roundtrip w = w))
    [ ("", ""); ("\xc3\xa9v\xc3\xa9nement", "na\xc3\xafve \xe2\x9c\x93 \xe4\xba\x8b\xe4\xbb\xb6");
      ("a", String.make 300 'x'); ("nul\x00byte", "\x00") ]

let wire_gen =
  QCheck.Gen.(
    map
      (fun ((id, trace, seq), (etype, text, k)) ->
        let kind =
          match k with
          | 0 -> Event.Internal
          | 1 -> Event.Send { msg = id * 7 - 500 }
          | _ -> Event.Receive { msg = (id * 13) - 1_000_000 }
        in
        { Wire.id; trace; seq; etype; text; kind })
      (pair
         (triple (int_bound 1_000_000) (int_bound 63) (int_bound 10_000))
         (triple (string_size ~gen:char (int_bound 16))
            (string_size ~gen:char (int_bound 16))
            (int_bound 2))))

let wire_arb =
  QCheck.make wire_gen ~print:(fun w -> Format.asprintf "%a (id %d seq %d)" Wire.pp w w.Wire.id w.Wire.seq)

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"wire codec round-trips any event" ~count:500 wire_arb (fun w ->
      roundtrip w = w)

let codec_prefix_rejected_prop =
  QCheck.Test.make ~name:"every strict prefix of an encoding is rejected" ~count:200 wire_arb
    (fun w ->
      let b = Buffer.create 64 in
      Wire.encode b w;
      let s = Buffer.to_bytes b in
      let ok = ref true in
      for len = 0 to Bytes.length s - 1 do
        (match Wire.decode s ~pos:0 ~len with
        | _ -> ok := false
        | exception Wire.Decode_error _ -> ())
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Framing: damage recovery                                            *)
(* ------------------------------------------------------------------ *)

let mk_events n =
  List.init n (fun i ->
      {
        Wire.id = i;
        trace = i mod 2;
        seq = 1 + (i / 2);
        etype = Printf.sprintf "e%d" i;
        text = "";
        kind = Event.Internal;
      })

let with_temp f =
  let tmp = Filename.temp_file "ocep_ingest_test" ".wire" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () -> f tmp

let write_stream path events =
  let oc = open_out_bin path in
  let w = Framing.create_writer oc ~trace_names:[| "P0"; "P1" |] in
  List.iter (Framing.write w) events;
  Framing.flush w;
  close_out oc

let file_contents path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* (frames, damage marks in stream order) *)
let read_all path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Framing.create_reader ic in
  let acc = ref [] and damage = ref [] in
  let continue = ref true in
  while !continue do
    match Framing.next r with
    | Framing.Frame w -> acc := w :: !acc
    | Framing.Crc_error -> damage := `Crc :: !damage
    | Framing.Bad_frame _ -> damage := `Bad :: !damage
    | Framing.Truncated ->
      damage := `Trunc :: !damage;
      continue := false
    | Framing.Eof -> continue := false
  done;
  (List.rev !acc, List.rev !damage)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let le32_of data off =
  Char.code data.[off]
  lor (Char.code data.[off + 1] lsl 8)
  lor (Char.code data.[off + 2] lsl 16)
  lor (Char.code data.[off + 3] lsl 24)

(* cut the stream at EVERY byte offset: the reader must hand back a
   clean prefix of the recorded events — never garbage, never a crash.
   A cut exactly on a frame boundary is a clean (if short) stream; any
   other cut must be reported as truncation. *)
let truncation_recovers_prefix () =
  let events = mk_events 10 in
  with_temp @@ fun tmp ->
  write_stream tmp events;
  let data = file_contents tmp in
  let header_end = 16 + le32_of data 8 in
  let boundaries = Hashtbl.create 16 in
  let pos = ref header_end in
  Hashtbl.replace boundaries !pos ();
  while !pos < String.length data do
    pos := !pos + 8 + le32_of data !pos;
    Hashtbl.replace boundaries !pos ()
  done;
  with_temp @@ fun cut_file ->
  for cut = 0 to String.length data - 1 do
    let oc = open_out_bin cut_file in
    output_string oc (String.sub data 0 cut);
    close_out oc;
    match read_all cut_file with
    | frames, damage ->
      check (Printf.sprintf "cut %d: prefix" cut) true (is_prefix frames events);
      if Hashtbl.mem boundaries cut then
        check (Printf.sprintf "cut %d: clean eof" cut) true (damage = [])
      else
        check (Printf.sprintf "cut %d: truncation reported" cut) true (damage = [ `Trunc ])
    | exception Framing.Bad_header _ ->
      check (Printf.sprintf "cut %d: inside the header" cut) true (cut < header_end)
  done;
  (* sanity: the uncut stream is whole *)
  let frames, damage = read_all tmp in
  check "uncut: all frames" true (frames = events);
  check "uncut: no damage" true (damage = [])

let flip path off =
  let data = Bytes.of_string (file_contents path) in
  Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0x5a));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let corrupted_crc_skips_one_frame () =
  let events = mk_events 10 in
  (* first event frame starts right after the header frame *)
  with_temp @@ fun tmp ->
  write_stream tmp events;
  let data = file_contents tmp in
  let le32 off =
    Char.code data.[off]
    lor (Char.code data.[off + 1] lsl 8)
    lor (Char.code data.[off + 2] lsl 16)
    lor (Char.code data.[off + 3] lsl 24)
  in
  let first_frame = 8 + 8 + le32 8 in
  (* flip a payload byte of the first event frame *)
  flip tmp (first_frame + 8);
  let frames, damage = read_all tmp in
  check "first frame dropped, rest intact" true (frames = List.tl events);
  check "exactly one crc error" true (damage = [ `Crc ]);
  (* and a flipped byte in the last frame's payload only loses the tail *)
  with_temp @@ fun tmp2 ->
  write_stream tmp2 events;
  flip tmp2 (String.length data - 1);
  let frames2, damage2 = read_all tmp2 in
  check "last frame dropped" true
    (frames2 = List.filteri (fun i _ -> i < 9) events && damage2 = [ `Crc ])

let corrupted_header_rejected () =
  with_temp @@ fun tmp ->
  write_stream tmp (mk_events 3);
  flip tmp 9;
  (* inside the header frame *)
  check "bad header raises" true
    (match read_all tmp with
    | _ -> false
    | exception Framing.Bad_header _ -> true)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let collect_admission ?config ~n_traces frames =
  let out = ref [] in
  let adm =
    Admission.create ?config ~n_traces
      ~emit:(fun ~verdict:_ ~decode_us:_ ~admit_us:_ w -> out := w :: !out)
      ()
  in
  List.iter (Admission.push adm) frames;
  Admission.finish adm;
  (List.rev !out, Admission.stats adm)

let admission_restores_order () =
  let events = mk_events 200 in
  let shuffled =
    Inject.apply_faults { Inject.f_reorder = 16; f_dup = 0.; f_drop = 0. } ~seed:3 events
  in
  check "faults did reorder" true (shuffled <> events);
  let out, st = collect_admission ~n_traces:2 shuffled in
  check "exact order restored" true (out = events);
  checki "all admitted" 200 st.Admission.admitted;
  check "reordering seen" true (st.Admission.reordered > 0);
  check "depth bounded by the block" true (st.Admission.max_depth < 16);
  checki "no gaps" 0 st.Admission.gaps

let admission_suppresses_duplicates () =
  let events = mk_events 200 in
  let noisy =
    Inject.apply_faults { Inject.f_reorder = 8; f_dup = 0.2; f_drop = 0. } ~seed:5 events
  in
  let out, st = collect_admission ~n_traces:2 noisy in
  check "exact order restored" true (out = events);
  checki "duplicates counted" (List.length noisy - 200) st.Admission.duplicates

let window_boundary_rejected () =
  let mk window =
    ignore
      (Admission.create
         ~config:{ Admission.reorder_window = window; gap_policy = Admission.Wait }
         ~n_traces:1
         ~emit:(fun ~verdict:_ ~decode_us:_ ~admit_us:_ _ -> ())
         ())
  in
  check "zero window rejected" true
    (match mk 0 with _ -> false | exception Invalid_argument _ -> true);
  check "negative window rejected" true
    (match mk (-4) with _ -> false | exception Invalid_argument _ -> true);
  check "negative Skip patience rejected" true
    (match
       Admission.create
         ~config:{ Admission.reorder_window = 1; gap_policy = Admission.Skip (-1) }
         ~n_traces:1
         ~emit:(fun ~verdict:_ ~decode_us:_ ~admit_us:_ _ -> ())
         ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let window_one_admits_in_order () =
  (* the smallest legal window passes an already-ordered stream through
     untouched (nothing ever has to be held back) *)
  let events = mk_events 50 in
  let out, st =
    collect_admission
      ~config:{ Admission.reorder_window = 1; gap_policy = Admission.Wait }
      ~n_traces:2 events
  in
  check "all through in order" true (out = events);
  checki "all admitted" 50 st.Admission.admitted;
  checki "no gaps" 0 st.Admission.gaps

(* trace 0 sends, trace 1 receives; dropping the send must not crash the
   engine: the orphaned receive is dropped and counted *)
let orphan_frames =
  [
    { Wire.id = 0; trace = 0; seq = 1; etype = "a"; text = ""; kind = Event.Internal };
    { Wire.id = 1; trace = 0; seq = 2; etype = "m"; text = ""; kind = Event.Send { msg = 1 } };
    { Wire.id = 2; trace = 1; seq = 1; etype = "m"; text = ""; kind = Event.Receive { msg = 1 } };
    { Wire.id = 3; trace = 1; seq = 2; etype = "b"; text = ""; kind = Event.Internal };
  ]

let skip_drops_orphan_receive () =
  let delivered = List.filter (fun w -> w.Wire.id <> 1) orphan_frames in
  let out, st =
    collect_admission
      ~config:{ Admission.reorder_window = 64; gap_policy = Admission.Skip 1 }
      ~n_traces:2 delivered
  in
  check "send gap skipped, receive orphaned" true
    (List.map (fun w -> w.Wire.id) out = [ 0; 3 ]);
  checki "one gap" 1 st.Admission.gaps;
  checki "one orphan" 1 st.Admission.orphan_receives;
  checki "admitted" 2 st.Admission.admitted

let wait_flushes_at_finish () =
  let delivered = List.filter (fun w -> w.Wire.id <> 1) orphan_frames in
  let out, st = collect_admission ~n_traces:2 delivered in
  (* Wait holds 2 and 3 until finish, then flushes them in id order *)
  check "flushed in order" true (List.map (fun w -> w.Wire.id) out = [ 0; 3 ]);
  checki "gap found at finish" 1 st.Admission.gaps;
  checki "orphan still dropped" 1 st.Admission.orphan_receives;
  (* no trace-0 event follows the lost send, so there is no local-clock
     jump to attribute the loss at *)
  checki "no jump to charge" 0 (Array.fold_left ( + ) 0 st.Admission.trace_gaps)

let trace_gap_attributed_at_jump () =
  let e id seq = { Wire.id; trace = 0; seq; etype = "x"; text = ""; kind = Event.Internal } in
  (* id 1 (seq 2) lost; the survivor with seq 3 reveals the jump *)
  let out, st = collect_admission ~n_traces:1 [ e 0 1; e 2 3 ] in
  check "survivors admitted" true (List.map (fun w -> w.Wire.id) out = [ 0; 2 ]);
  checki "one gap" 1 st.Admission.gaps;
  checki "charged to trace 0" 1 st.Admission.trace_gaps.(0)

let fail_raises_on_loss () =
  let delivered = List.filter (fun w -> w.Wire.id <> 1) orphan_frames in
  check "finish raises" true
    (match
       collect_admission
         ~config:{ Admission.reorder_window = 64; gap_policy = Admission.Fail }
         ~n_traces:2 delivered
     with
    | _ -> false
    | exception Admission.Gap _ -> true)

let wait_raises_on_window_overflow () =
  let events = mk_events 8 in
  let missing_head = List.tl events in
  check "overflow raises" true
    (match
       collect_admission
         ~config:{ Admission.reorder_window = 4; gap_policy = Admission.Wait }
         ~n_traces:2 missing_head
     with
    | _ -> false
    | exception Admission.Gap _ -> true)

let late_arrival_not_a_duplicate () =
  let e id seq =
    { Wire.id; trace = 0; seq; etype = "x"; text = ""; kind = Event.Internal }
  in
  let out = ref [] in
  let adm =
    Admission.create
      ~config:{ Admission.reorder_window = 64; gap_policy = Admission.Skip 0 }
      ~n_traces:1
      ~emit:(fun ~verdict:_ ~decode_us:_ ~admit_us:_ w -> out := w :: !out)
      ()
  in
  Admission.push adm (e 1 2);
  (* id 0 skipped immediately *)
  Admission.push adm (e 0 1);
  (* late, not a duplicate *)
  Admission.push adm (e 0 1);
  (* a second copy IS a duplicate *)
  Admission.finish adm;
  let st = Admission.stats adm in
  checki "late" 1 st.Admission.late;
  checki "duplicate" 1 st.Admission.duplicates;
  checki "gap" 1 st.Admission.gaps;
  check "only id 1 admitted" true (List.map (fun w -> w.Wire.id) (List.rev !out) = [ 1 ])

(* Provenance verdicts: emit gets In_order on the fast path, Reordered
   for anything that sat in the buffer; on_drop names why a record never
   reached the engine. *)
let verdicts_and_drops () =
  let module Provenance = Ocep_obs.Provenance in
  let e id seq = { Wire.id; trace = 0; seq; etype = "x"; text = ""; kind = Event.Internal } in
  let out = ref [] in
  let drops = ref [] in
  let adm =
    Admission.create
      ~config:{ Admission.reorder_window = 64; gap_policy = Admission.Skip 0 }
      ~n_traces:1
      ~emit:(fun ~verdict ~decode_us ~admit_us w ->
        check "admit after decode" true (admit_us >= decode_us);
        out := (w.Wire.id, verdict) :: !out)
      ~on_drop:(fun verdict id -> drops := (id, verdict) :: !drops)
      ()
  in
  Admission.push adm (e 0 1);
  (* 2 overtakes 1; Skip 0 gives up on 1 at once and releases 2 *)
  Admission.push adm (e 2 3);
  (* 1 finally arrives: late, not a duplicate *)
  Admission.push adm (e 1 2);
  (* a second copy of 1 IS a duplicate (its lateness was consumed) *)
  Admission.push adm (e 1 2);
  (* same dance for 4 overtaking 3 *)
  Admission.push adm (e 4 5);
  Admission.push adm (e 3 4);
  Admission.finish adm;
  check "verdict per admitted record" true
    (List.rev !out
    = [ (0, Provenance.In_order); (2, Provenance.Reordered); (4, Provenance.Reordered) ]);
  check "drop verdicts" true
    (List.sort compare !drops
    = [
        (1, Provenance.Deduped);
        (1, Provenance.Gap_skipped);
        (1, Provenance.Late);
        (3, Provenance.Gap_skipped);
        (3, Provenance.Late);
      ])

let orphan_drop_reported () =
  let module Provenance = Ocep_obs.Provenance in
  let drops = ref [] in
  let adm =
    Admission.create ~n_traces:2
      ~emit:(fun ~verdict:_ ~decode_us:_ ~admit_us:_ _ -> ())
      ~on_drop:(fun verdict id -> drops := (id, verdict) :: !drops)
      ()
  in
  List.iter (Admission.push adm) (List.filter (fun w -> w.Wire.id <> 1) orphan_frames);
  Admission.finish adm;
  check "gap and orphan named" true
    (List.sort compare !drops = [ (1, Provenance.Gap_skipped); (2, Provenance.Orphaned) ])

let push_at_us_is_decode_stamp () =
  let decode = ref nan in
  let adm =
    Admission.create ~n_traces:1
      ~emit:(fun ~verdict:_ ~decode_us ~admit_us:_ _ -> decode := decode_us)
      ()
  in
  Admission.push ~at_us:42.5 adm
    { Wire.id = 0; trace = 0; seq = 1; etype = "x"; text = ""; kind = Event.Internal };
  check "caller timestamp carried" true (!decode = 42.5)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let bqueue_block_is_lossless () =
  let q = Bqueue.create ~capacity:2 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 500 do
          ignore (Bqueue.push q i)
        done;
        Bqueue.close q)
  in
  let got = ref [] in
  let continue = ref true in
  while !continue do
    match Bqueue.pop q with
    | Some v -> got := v :: !got
    | None -> continue := false
  done;
  Domain.join producer;
  check "all items, in order" true (List.rev !got = List.init 500 (fun i -> i + 1));
  checki "nothing shed" 0 (Bqueue.shed q);
  check "occupancy bounded" true (Bqueue.max_occupancy q <= 2)

let bqueue_shed_drops_on_full () =
  let q = Bqueue.create ~policy:Bqueue.Shed ~capacity:2 () in
  check "first fits" true (Bqueue.push q 1);
  check "second fits" true (Bqueue.push q 2);
  check "third shed" false (Bqueue.push q 3);
  checki "shed counted" 1 (Bqueue.shed q);
  Bqueue.close q;
  check "queued items survive close" true (Bqueue.pop q = Some 1 && Bqueue.pop q = Some 2);
  check "then drained" true (Bqueue.pop q = None);
  check "push after close rejected" true
    (match Bqueue.push q 4 with _ -> false | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Headline property: record -> degrade -> replay == direct delivery   *)
(* ------------------------------------------------------------------ *)

let run_direct ~config ~net (w : Workload.t) =
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> ignore (Poet.ingest poet raw))
       ~bodies:w.Workload.bodies);
  (Runner.reports_digest engine, Engine.events_processed engine)

let record_to ~path (w : Workload.t) =
  let names = Sim.trace_names w.Workload.sim_config in
  let oc = open_out_bin path in
  let wr = Framing.create_writer oc ~trace_names:names in
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> ignore (Framing.write_raw wr raw))
       ~bodies:w.Workload.bodies);
  Framing.flush wr;
  close_out oc

let read_frames path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let r = Framing.create_reader ic in
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Framing.next r with
    | Framing.Frame w -> acc := w :: !acc
    | Framing.Eof -> continue := false
    | Framing.Crc_error | Framing.Bad_frame _ | Framing.Truncated ->
      Alcotest.fail "pristine stream reported damage"
  done;
  (Framing.reader_trace_names r, List.rev !acc)

let replay_frames ~config ~net ~trace_names frames =
  let poet = Poet.create ~trace_names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let adm =
    Admission.create
      ~n_traces:(Array.length trace_names)
      ~emit:(fun ~verdict ~decode_us ~admit_us w ->
        Engine.set_wire_stamps engine ~decode_us ~admit_us;
        ignore (Engine.feed_wire engine ~id:w.Wire.id ~verdict (Wire.to_raw w)))
      ()
  in
  List.iter (Admission.push adm) frames;
  Admission.finish adm;
  (Runner.reports_digest engine, Admission.stats adm)

let degraded_replay_is_bit_identical ~config () =
  List.iter
    (fun case ->
      let mk () = Cases.make case ~traces:6 ~seed:5 ~max_events:3000 in
      let w = mk () in
      let net = Compile.compile (Parser.parse w.Workload.pattern) in
      let direct_digest, direct_events = run_direct ~config ~net w in
      with_temp @@ fun tmp ->
      (* same seed: the recorded stream is the same event sequence *)
      record_to ~path:tmp (mk ());
      let trace_names, frames = read_frames tmp in
      checki (case ^ ": recorded everything") direct_events (List.length frames);
      let faulted =
        Inject.apply_faults
          { Inject.f_reorder = 8; f_dup = 0.05; f_drop = 0. }
          ~seed:13 frames
      in
      check (case ^ ": delivery degraded") true (faulted <> frames);
      let replay_digest, st = replay_frames ~config ~net ~trace_names faulted in
      checki (case ^ ": nothing lost") direct_events st.Admission.admitted;
      checki (case ^ ": no gaps") 0 st.Admission.gaps;
      check (case ^ ": duplicates suppressed") true (st.Admission.duplicates > 0);
      checks (case ^ ": digests equal") direct_digest replay_digest)
    Cases.names

let sequential_config = Engine.default_config

let parallel_config =
  { Engine.default_config with Engine.parallelism = 4; cutover_batch = 0; cutover_work = 0 }

(* Source.replay end to end over a file, pipelined: the full production
   path (reader domain, bounded queue, admission, engine) reproduces the
   direct digest *)
let source_replay_pipelined () =
  let case = "races" in
  let mk () = Cases.make case ~traces:6 ~seed:5 ~max_events:3000 in
  let w = mk () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let direct_digest, direct_events = run_direct ~config:sequential_config ~net w in
  with_temp @@ fun tmp ->
  record_to ~path:tmp (mk ());
  let ic = open_in_bin tmp in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let reader = Framing.create_reader ic in
  let poet = Poet.create ~trace_names:(Framing.reader_trace_names reader) () in
  let engine = Engine.create ~config:sequential_config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let st =
    Session.replay
      ~config:{ Session.default with Session.pipeline = true; queue_capacity = 64 }
      ~engine reader
  in
  checki "all frames" direct_events st.Source.admission.Admission.frames;
  checki "nothing shed" 0 st.Source.queue_shed;
  check "queue bounded" true (st.Source.queue_max_occupancy <= 64);
  checks "digest equals direct" direct_digest (Runner.reports_digest engine)

(* The deprecated Source.replay shim and the typed Session API agree:
   same stream, same knobs, same digest and stats *)
let session_shim_agreement () =
  let mk () = Cases.make "atomicity" ~traces:4 ~seed:9 ~max_events:2000 in
  let w = mk () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let run_with replay =
    with_temp @@ fun tmp ->
    record_to ~path:tmp (mk ());
    let ic = open_in_bin tmp in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let reader = Framing.create_reader ic in
    let poet = Poet.create ~trace_names:(Framing.reader_trace_names reader) () in
    let engine = Engine.create ~config:sequential_config ~net ~poet () in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    let st : Source.stats = replay ~engine reader in
    (Runner.reports_digest engine, st.Source.admission.Admission.frames)
  in
  let new_digest, new_frames = run_with (fun ~engine r -> Session.replay ~engine r) in
  let old_digest, old_frames =
    run_with (fun ~engine r -> (Source.replay ~engine r [@warning "-3"]))
  in
  checks "shim digest agrees" new_digest old_digest;
  checki "shim frame count agrees" new_frames old_frames

(* Session's faults field reproduces the manual degrade-then-replay
   pipeline bit for bit *)
let session_faults_equal_manual () =
  let faults = { Inject.f_reorder = 8; f_dup = 0.05; f_drop = 0. } in
  let fault_seed = 13 in
  let mk () = Cases.make "races" ~traces:6 ~seed:5 ~max_events:3000 in
  let w = mk () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  with_temp @@ fun tmp ->
  record_to ~path:tmp (mk ());
  let trace_names, frames = read_frames tmp in
  let faulted = Inject.apply_faults faults ~seed:fault_seed frames in
  check "delivery degraded" true (faulted <> frames);
  let manual_digest, manual_st =
    replay_frames ~config:sequential_config ~net ~trace_names faulted
  in
  let ic = open_in_bin tmp in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let reader = Framing.create_reader ic in
  let poet = Poet.create ~trace_names () in
  let engine = Engine.create ~config:sequential_config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let logged = ref [] in
  let st =
    Session.replay
      ~config:{ Session.default with Session.faults; fault_seed }
      ~log:(fun line -> logged := line :: !logged)
      ~engine reader
  in
  checks "digest equals manual degrade+replay" manual_digest (Runner.reports_digest engine);
  checki "admitted agrees" manual_st.Admission.admitted st.Source.admission.Admission.admitted;
  checki "duplicates agree" manual_st.Admission.duplicates
    st.Source.admission.Admission.duplicates;
  checki "one degradation log line" 1 (List.length !logged)

let () =
  Alcotest.run "ingest"
    [
      ("crc32", [ Alcotest.test_case "check value" `Quick crc_check_value ]);
      ( "wire",
        [
          Alcotest.test_case "message id ranges" `Quick codec_message_ids;
          Alcotest.test_case "utf8 and empty strings" `Quick codec_strings;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
          QCheck_alcotest.to_alcotest codec_prefix_rejected_prop;
        ] );
      ( "framing",
        [
          Alcotest.test_case "truncation at every offset" `Quick truncation_recovers_prefix;
          Alcotest.test_case "crc flip skips one frame" `Quick corrupted_crc_skips_one_frame;
          Alcotest.test_case "corrupt header rejected" `Quick corrupted_header_rejected;
        ] );
      ( "admission",
        [
          Alcotest.test_case "restores exact order" `Quick admission_restores_order;
          Alcotest.test_case "suppresses duplicates" `Quick admission_suppresses_duplicates;
          Alcotest.test_case "skip drops orphan receive" `Quick skip_drops_orphan_receive;
          Alcotest.test_case "wait flushes at finish" `Quick wait_flushes_at_finish;
          Alcotest.test_case "trace gap attributed at jump" `Quick trace_gap_attributed_at_jump;
          Alcotest.test_case "fail raises on loss" `Quick fail_raises_on_loss;
          Alcotest.test_case "wait raises on overflow" `Quick wait_raises_on_window_overflow;
          Alcotest.test_case "late is not duplicate" `Quick late_arrival_not_a_duplicate;
          Alcotest.test_case "window boundary rejected" `Quick window_boundary_rejected;
          Alcotest.test_case "window one admits in order" `Quick window_one_admits_in_order;
          Alcotest.test_case "verdicts and drops" `Quick verdicts_and_drops;
          Alcotest.test_case "orphan drop reported" `Quick orphan_drop_reported;
          Alcotest.test_case "push at_us is decode stamp" `Quick push_at_us_is_decode_stamp;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "block is lossless" `Quick bqueue_block_is_lossless;
          Alcotest.test_case "shed drops on full" `Quick bqueue_shed_drops_on_full;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "degraded replay sequential" `Quick
            (degraded_replay_is_bit_identical ~config:sequential_config);
          Alcotest.test_case "degraded replay parallel" `Quick
            (degraded_replay_is_bit_identical ~config:parallel_config);
          Alcotest.test_case "source replay pipelined" `Quick source_replay_pipelined;
        ] );
      ( "session",
        [
          Alcotest.test_case "shim agrees with typed config" `Quick session_shim_agreement;
          Alcotest.test_case "faults equal manual degrade" `Quick session_faults_equal_manual;
        ] );
    ]
