(* The differential fuzzer's own regression suite: generator sanity, a
   bounded fresh campaign against all five oracles, replay of the
   checked-in corpus — including the minimized cases of the two engine
   bugs the fuzzer caught in PR 6 (matcher backjump conflict omission,
   unsound history-pruning rule) — and proof that each deliberately
   seeded engine mutation is detected. *)

open Ocep_base
module Fuzz = Ocep_harness.Fuzz
module Compile = Ocep_pattern.Compile
module Parser = Ocep_pattern.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let corpus_dir = "corpus"

let generator_deterministic () =
  for seed = 1 to 20 do
    check "equal seeds, equal cases" true (Fuzz.generate ~seed = Fuzz.generate ~seed)
  done;
  check "different seeds differ somewhere" true
    (List.exists
       (fun seed -> Fuzz.generate ~seed <> Fuzz.generate ~seed:(seed + 1000))
       [ 1; 2; 3; 4; 5 ])

let generator_valid () =
  let saw_registry = ref false in
  for seed = 1 to 30 do
    let c = Fuzz.generate ~seed in
    check "pattern source compiles" true
      (match Compile.compile_file (Parser.parse_file c.Fuzz.c_pattern) with
      | nets ->
        if List.length nets > 1 then saw_registry := true;
        nets <> []
      | exception _ -> false);
    check "2-4 traces" true
      (Array.length c.Fuzz.c_traces >= 2 && Array.length c.Fuzz.c_traces <= 4);
    (* the event list is a valid linearization: every receive's message
       was sent earlier, exactly once *)
    let sent = Hashtbl.create 16 in
    List.iter
      (fun (r : Event.raw) ->
        match r.Event.r_kind with
        | Event.Send { msg } ->
          check "message ids unique" false (Hashtbl.mem sent msg);
          Hashtbl.replace sent msg ()
        | Event.Receive { msg } -> check "receive after send" true (Hashtbl.mem sent msg)
        | Event.Internal -> ())
      c.Fuzz.c_events
  done;
  check "template registries drawn" true !saw_registry

let corpus_roundtrip () =
  let case = Fuzz.generate ~seed:7 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ocep-fuzz-roundtrip" in
  let path = Fuzz.save ~dir ~expect_mutant:"no-pins" case in
  let case', expect = Fuzz.load path in
  check "case round-trips" true (case = case');
  check "expect-mutant header round-trips" true (expect = Some "no-pins")

let fresh_campaign_clean () =
  let s = Fuzz.run ~seeds:60 ~start_seed:1 () in
  check_int "60 seeds ran" 60 s.Fuzz.s_ran;
  check "brute-force oracle exercised" true (s.Fuzz.s_oracle_checked > 0);
  (match s.Fuzz.s_failures with
  | [] -> ()
  | (seed, d) :: _ ->
    Alcotest.failf "seed %d diverged: %s: %s" seed d.Fuzz.d_oracle d.Fuzz.d_detail);
  check_int "no divergences" 0 (List.length s.Fuzz.s_failures)

let corpus_replays_clean () =
  let cases = Fuzz.load_dir corpus_dir in
  check "corpus checked in" true (List.length cases >= 6);
  List.iter
    (fun (name, case, _expect) ->
      match (Fuzz.check case).Fuzz.r_divergence with
      | None -> ()
      | Some d -> Alcotest.failf "%s regressed: %s: %s" name d.Fuzz.d_oracle d.Fuzz.d_detail)
    cases

let corpus_catches_mutants () =
  let expected = ref 0 in
  List.iter
    (fun (name, case, expect) ->
      match expect with
      | None -> ()
      | Some m -> (
        incr expected;
        match Fuzz.mutation_of_name m with
        | None -> Alcotest.failf "%s: unknown mutation %s" name m
        | Some mutation ->
          check (name ^ " diverges under " ^ m) true
            ((Fuzz.check ~mutation case).Fuzz.r_divergence <> None)))
    (Fuzz.load_dir corpus_dir);
  (* one proof case per mutation is checked in *)
  check_int "all mutations proven" (List.length Fuzz.mutations) !expected

let fresh_seeds_catch_mutant () =
  (* a fuzzer that never fails proves nothing: even a handful of fresh
     seeds must fell the crudest mutant *)
  let s = Fuzz.run ~mutation:Fuzz.Tiny_node_budget ~seeds:5 ~start_seed:1 () in
  check "tiny-budget mutant caught" true (s.Fuzz.s_failures <> [])

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick generator_deterministic;
          Alcotest.test_case "valid cases" `Quick generator_valid;
          Alcotest.test_case "corpus file round-trip" `Quick corpus_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fresh campaign clean" `Slow fresh_campaign_clean;
          Alcotest.test_case "corpus replays clean" `Quick corpus_replays_clean;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "corpus catches mutants" `Quick corpus_catches_mutants;
          Alcotest.test_case "fresh seeds catch mutant" `Quick fresh_seeds_catch_mutant;
        ] );
    ]
