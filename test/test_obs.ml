(* The observability layer: bounded histogram, metrics registry, span
   ring, and the two expositions. *)

module Histogram = Ocep_stats.Histogram
module Summary = Ocep_stats.Summary
module Metrics = Ocep_obs.Metrics
module Tracer = Ocep_obs.Tracer
module Snapshot = Ocep_obs.Snapshot
module Watermark = Ocep_obs.Watermark
module Serve = Ocep_obs.Serve
module Minijson = Ocep_obs.Minijson
module Provenance = Ocep_obs.Provenance

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let hist_exact_moments () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1.; 10.; 100.; 1000. ];
  checki "count" 4 (Histogram.count h);
  checkf "sum" 1111. (Histogram.sum h);
  checkf "min" 1. (Histogram.min_value h);
  checkf "max" 1000. (Histogram.max_value h);
  checkf "mean" 277.75 (Histogram.mean h)

let hist_empty_raises () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  check "quantile raises" true
    (try
       ignore (Histogram.quantile h 0.5);
       false
     with Invalid_argument _ -> true);
  check "min raises" true
    (try
       ignore (Histogram.min_value h);
       false
     with Invalid_argument _ -> true)

let hist_nan_raises () =
  let h = Histogram.create () in
  check "nan raises" true
    (try
       Histogram.record h Float.nan;
       false
     with Invalid_argument _ -> true)

let hist_out_of_range () =
  let lo, hi = Histogram.range in
  let h = Histogram.create () in
  Histogram.record h (-5.);
  (* negative -> underflow *)
  Histogram.record h (lo /. 10.);
  Histogram.record h (hi *. 10.);
  checki "count" 3 (Histogram.count h);
  (* the quantile answer is clamped to the exact extremes *)
  checkf "q0 is min" (-5.) (Histogram.quantile h 0.);
  checkf "q1 is max" (hi *. 10.) (Histogram.quantile h 1.)

let hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 1.; 2.; 3. ];
  List.iter (Histogram.record b) [ 100.; 200. ];
  let m = Histogram.merge a b in
  checki "merged count" 5 (Histogram.count m);
  checkf "merged sum" 306. (Histogram.sum m);
  checkf "merged min" 1. (Histogram.min_value m);
  checkf "merged max" 200. (Histogram.max_value m);
  (* arguments unchanged *)
  checki "a count" 3 (Histogram.count a);
  checki "b count" 2 (Histogram.count b);
  (* merging is the same as recording everything into one histogram *)
  let all = Histogram.create () in
  List.iter (Histogram.record all) [ 1.; 2.; 3.; 100.; 200. ];
  List.iter
    (fun q -> checkf "same quantile" (Histogram.quantile all q) (Histogram.quantile m q))
    [ 0.; 0.25; 0.5; 0.75; 0.95; 1. ]

(* the documented error bound: any quantile is within one bucket width
   (a factor of bucket_ratio) of the order statistic it stands for *)
let hist_quantile_error_prop =
  let lo, hi = Histogram.range in
  QCheck.Test.make ~name:"histogram quantile within one bucket of the order statistic"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 200) (float_range (lo *. 2.) (hi /. 2.)))
    (fun l ->
      let sorted = Array.of_list (List.sort Float.compare l) in
      let n = Array.length sorted in
      let h = Histogram.create () in
      Array.iter (Histogram.record h) sorted;
      List.for_all
        (fun q ->
          let est = Histogram.quantile h q in
          let x = sorted.(int_of_float (q *. float_of_int (n - 1))) in
          est >= x /. Histogram.bucket_ratio && est <= x *. Histogram.bucket_ratio)
        [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ])

(* Summary.of_histogram vs Summary.of_samples on the same data: exact
   fields equal; each quartile within one bucket width of the interval
   spanned by the two order statistics of_samples interpolates between *)
let of_histogram_matches_of_samples_prop =
  let lo, hi = Histogram.range in
  QCheck.Test.make ~name:"of_histogram quartiles match of_samples within bucket resolution"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 200) (float_range (lo *. 2.) (hi /. 2.)))
    (fun l ->
      let sorted = Array.of_list (List.sort Float.compare l) in
      let n = Array.length sorted in
      let h = Histogram.create () in
      Array.iter (Histogram.record h) sorted;
      let sh = Summary.of_histogram h and ss = Summary.of_samples sorted in
      let close q v =
        let r = q *. float_of_int (n - 1) in
        let x_lo = sorted.(int_of_float (Float.floor r))
        and x_hi = sorted.(int_of_float (Float.ceil r)) in
        v >= x_lo /. Histogram.bucket_ratio && v <= x_hi *. Histogram.bucket_ratio
      in
      sh.Summary.n = ss.Summary.n
      && sh.Summary.min = ss.Summary.min
      && sh.Summary.max = ss.Summary.max
      && Float.abs (sh.Summary.mean -. ss.Summary.mean) <= 1e-9 *. Float.abs ss.Summary.mean
      && close 0.25 sh.Summary.q1
      && close 0.5 sh.Summary.median
      && close 0.75 sh.Summary.q3)

(* ------------------------------------------------------------------ *)
(* Summary edge cases                                                  *)
(* ------------------------------------------------------------------ *)

let summary_quantile_edges () =
  checkf "n=1 q=0" 7. (Summary.quantile [| 7. |] 0.);
  checkf "n=1 q=0.5" 7. (Summary.quantile [| 7. |] 0.5);
  checkf "n=1 q=1" 7. (Summary.quantile [| 7. |] 1.);
  let sorted = [| 1.; 2.; 3.; 4. |] in
  checkf "q=0 is min" 1. (Summary.quantile sorted 0.);
  checkf "q=1 is max" 4. (Summary.quantile sorted 1.);
  check "q<0 raises" true
    (try
       ignore (Summary.quantile sorted (-0.1));
       false
     with Invalid_argument _ -> true);
  check "q>1 raises" true
    (try
       ignore (Summary.quantile sorted 1.1);
       false
     with Invalid_argument _ -> true)

let summary_nan_raises () =
  check "nan rejected" true
    (try
       ignore (Summary.of_samples [| 1.; Float.nan; 3. |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"test counter" "ocep_test_total" in
  let g = Metrics.gauge m "ocep_test_gauge" in
  Metrics.incr c ();
  Metrics.incr c ~by:2 ();
  Metrics.set g 1.5;
  checki "counter" 3 (Metrics.counter_value c);
  checkf "gauge" 1.5 (Metrics.gauge_value g);
  (* re-registering the same name returns the same instrument *)
  let c' = Metrics.counter m "ocep_test_total" in
  Metrics.incr c' ();
  checki "same instrument" 4 (Metrics.counter_value c);
  Metrics.set_counter c 10;
  checki "set_counter" 10 (Metrics.counter_value c);
  check "negative incr raises" true
    (try
       Metrics.incr c ~by:(-1) ();
       false
     with Invalid_argument _ -> true);
  check "kind mismatch raises" true
    (try
       ignore (Metrics.gauge m "ocep_test_total");
       false
     with Invalid_argument _ -> true)

let metrics_registration_order () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "ocep_a_total");
  ignore (Metrics.gauge m "ocep_b");
  ignore (Metrics.histogram m "ocep_c_us");
  let names = List.map (fun (it : Metrics.item) -> it.Metrics.name) (Metrics.items m) in
  Alcotest.(check (list string)) "order" [ "ocep_a_total"; "ocep_b"; "ocep_c_us" ] names

(* ------------------------------------------------------------------ *)
(* Tracer ring                                                         *)
(* ------------------------------------------------------------------ *)

let span i =
  ( Printf.sprintf "s%d" i,
    "t",
    float_of_int i,
    1.,
    0,
    [ ("i", Tracer.Int i); ("f", Tracer.Float 0.5); ("s", Tracer.Str "x\"y") ] )

let record_span t (name, cat, ts_us, dur_us, tid, args) =
  Tracer.record t ~name ~cat ~ts_us ~dur_us ~tid ~args

let tracer_wraparound () =
  let t = Tracer.create ~capacity:4 in
  checki "capacity" 4 (Tracer.capacity t);
  for i = 0 to 9 do
    record_span t (span i)
  done;
  checki "length" 4 (Tracer.length t);
  checki "recorded" 10 (Tracer.recorded t);
  checki "dropped" 6 (Tracer.dropped t);
  (* the ring keeps the most recent spans, oldest first *)
  Alcotest.(check (list string))
    "retained"
    [ "s6"; "s7"; "s8"; "s9" ]
    (List.map (fun (s : Tracer.span) -> s.Tracer.name) (Tracer.spans t))

let tracer_not_wrapped () =
  let t = Tracer.create ~capacity:8 in
  for i = 0 to 2 do
    record_span t (span i)
  done;
  checki "length" 3 (Tracer.length t);
  checki "dropped" 0 (Tracer.dropped t);
  Alcotest.(check (list string))
    "order" [ "s0"; "s1"; "s2" ]
    (List.map (fun (s : Tracer.span) -> s.Tracer.name) (Tracer.spans t));
  check "capacity must be positive" true
    (try
       ignore (Tracer.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

let tracer_dump_shape () =
  let t = Tracer.create ~capacity:4 in
  for i = 0 to 5 do
    record_span t (span i)
  done;
  let path = Filename.temp_file "ocep_trace" ".json" in
  let oc = open_out path in
  Tracer.dump oc t;
  close_out oc;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check "traceEvents" true (contains s "\"traceEvents\": [");
  check "complete events" true (contains s "\"ph\": \"X\"");
  check "keeps newest" true (contains s "\"name\": \"s5\"");
  check "drops oldest" true (not (contains s "\"name\": \"s1\""));
  check "escapes arg strings" true (contains s "\"s\": \"x\\\"y\"");
  check "bookkeeping" true (contains s "\"spans_recorded\": 6, \"spans_dropped\": 2")

(* ------------------------------------------------------------------ *)
(* Expositions                                                         *)
(* ------------------------------------------------------------------ *)

let golden_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"Events processed" "ocep_events_total" in
  Metrics.incr c ~by:42 ();
  let g0 = Metrics.gauge m ~help:"Busy seconds" "ocep_busy_seconds{worker=\"0\"}" in
  let g1 = Metrics.gauge m ~help:"Busy seconds" "ocep_busy_seconds{worker=\"1\"}" in
  Metrics.set g0 0.25;
  Metrics.set g1 1.5;
  let h = Metrics.histogram m ~help:"Latency" "ocep_latency_us" in
  List.iter (Histogram.record h) [ 1.; 1.05; 10.; 100. ];
  ignore (Metrics.histogram m "ocep_empty_us");
  m

let prometheus_golden () =
  let s = Snapshot.prometheus (golden_registry ()) in
  let lines = String.split_on_char '\n' s in
  let count p = List.length (List.filter p lines) in
  check "counter line" true (contains s "ocep_events_total 42\n");
  check "help line" true (contains s "# HELP ocep_events_total Events processed\n");
  check "counter type" true (contains s "# TYPE ocep_events_total counter\n");
  (* one TYPE line for the two labeled gauges of the same family *)
  checki "family TYPE once" 1
    (count (fun l -> l = "# TYPE ocep_busy_seconds gauge"));
  check "labeled gauge" true (contains s "ocep_busy_seconds{worker=\"0\"} 0.25\n");
  check "labeled gauge 2" true (contains s "ocep_busy_seconds{worker=\"1\"} 1.5\n");
  check "histogram type" true (contains s "# TYPE ocep_latency_us histogram\n");
  check "+Inf bucket" true (contains s "ocep_latency_us_bucket{le=\"+Inf\"} 4\n");
  check "sum" true (contains s "ocep_latency_us_sum 112.05\n");
  check "count" true (contains s "ocep_latency_us_count 4\n");
  (* cumulative bucket counts are monotone and end at the total *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 24 && String.sub l 0 24 = "ocep_latency_us_bucket{l" then
          int_of_string_opt (String.sub l (String.rindex l ' ' + 1)
                               (String.length l - String.rindex l ' ' - 1))
        else None)
      lines
  in
  check "monotone" true (List.sort compare bucket_counts = bucket_counts);
  checki "ends at count" 4 (List.nth bucket_counts (List.length bucket_counts - 1));
  check "empty histogram still exposed" true (contains s "ocep_empty_us_count 0\n")

(* a tiny JSON validator: enough to prove the exposition is parseable *)
let rec skip_ws s i = if i < String.length s && s.[i] = ' ' then skip_ws s (i + 1) else i

let rec parse_value s i =
  let i = skip_ws s i in
  match s.[i] with
  | '{' -> parse_object s (i + 1)
  | '"' -> parse_string s (i + 1)
  | _ ->
    let j = ref i in
    while
      !j < String.length s
      && (match s.[!j] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr j
    done;
    if !j = i then failwith (Printf.sprintf "bad value at %d" i);
    ignore (float_of_string (String.sub s i (!j - i)));
    !j

and parse_string s i =
  if s.[i] = '"' then i + 1
  else if s.[i] = '\\' then parse_string s (i + 2)
  else parse_string s (i + 1)

and parse_object s i =
  let i = skip_ws s i in
  if s.[i] = '}' then i + 1
  else
    let rec members i =
      let i = skip_ws s i in
      if s.[i] <> '"' then failwith (Printf.sprintf "expected key at %d" i);
      let i = parse_string s (i + 1) in
      let i = skip_ws s i in
      if s.[i] <> ':' then failwith (Printf.sprintf "expected : at %d" i);
      let i = parse_value s (i + 1) in
      let i = skip_ws s i in
      if s.[i] = ',' then members (i + 1)
      else if s.[i] = '}' then i + 1
      else failwith (Printf.sprintf "expected , or } at %d" i)
    in
    members i

let json_parses s =
  match parse_value s 0 with
  | i -> skip_ws s i = String.length s
  | exception _ -> false

let json_golden () =
  let s = Snapshot.json (golden_registry ()) in
  check "one line" true (not (String.contains s '\n'));
  check "parses" true (json_parses s);
  check "counter" true (contains s "\"ocep_events_total\": 42");
  (* the labeled name's inner quotes are escaped in the key *)
  check "escaped label key" true (contains s "\"ocep_busy_seconds{worker=\\\"0\\\"}\": 0.25");
  check "histogram fields" true
    (contains s "\"ocep_latency_us\": {\"count\": 4, \"sum\": 112.05");
  check "tail fields" true (contains s "\"p999\":");
  check "empty histogram" true (contains s "\"ocep_empty_us\": {\"count\": 0}")

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Label escaping and labeled exposition                               *)
(* ------------------------------------------------------------------ *)

let escape_label_values () =
  let checks = Alcotest.(check string) in
  checks "clean passes through" "fast" (Metrics.escape_label_value "fast");
  checks "quote" "a\\\"b" (Metrics.escape_label_value "a\"b");
  checks "backslash" "a\\\\b" (Metrics.escape_label_value "a\\b");
  checks "newline" "a\\nb" (Metrics.escape_label_value "a\nb");
  checks "all three" "\\\\\\\"\\n" (Metrics.escape_label_value "\\\"\n")

let with_labels_builds_escaped_keys () =
  let checks = Alcotest.(check string) in
  checks "no labels" "ocep_x" (Metrics.with_labels "ocep_x" []);
  checks "one label" "ocep_x{p=\"a\"}" (Metrics.with_labels "ocep_x" [ ("p", "a") ]);
  checks "escapes and order"
    "ocep_x{p=\"a\\\"b\",q=\"c\\\\d\"}"
    (Metrics.with_labels "ocep_x" [ ("p", "a\"b"); ("q", "c\\d") ])

let prometheus_escapes_label_values () =
  let m = Metrics.create () in
  let name = Metrics.with_labels "ocep_matches_total" [ ("pattern", "A \"x\"\\B\nC") ] in
  Metrics.incr (Metrics.counter m name) ();
  let s = Snapshot.prometheus m in
  check "exposition escapes quote, backslash, newline" true
    (contains s "ocep_matches_total{pattern=\"A \\\"x\\\"\\\\B\\nC\"} 1\n");
  (* a raw newline inside a label value would split the sample line *)
  check "no raw newline inside the sample" false (contains s "B\nC\"} 1\n")

let prometheus_labeled_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m (Metrics.with_labels "ocep_latency_us" [ ("pattern", "p0") ]) in
  List.iter (Histogram.record h) [ 1.; 10. ];
  let s = Snapshot.prometheus m in
  check "bucket splices le into the label set" true
    (contains s "ocep_latency_us_bucket{pattern=\"p0\",le=\"+Inf\"} 2\n");
  check "sum keeps the labels" true (contains s "ocep_latency_us_sum{pattern=\"p0\"} 11\n");
  check "count keeps the labels" true (contains s "ocep_latency_us_count{pattern=\"p0\"} 2\n")

let telemetry_engine () =
  let w = Ocep_harness.Cases.make "races" ~traces:4 ~seed:7 ~max_events:2_000 in
  let module Workload = Ocep_workloads.Workload in
  let module Engine = Ocep.Engine in
  let module Sim = Ocep_sim.Sim in
  let module Poet = Ocep_poet.Poet in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let config =
    { Engine.default_config with Engine.latency_sink = Engine.Histogram; trace_spans = true }
  in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  (* under the Histogram sink the raw vector stays empty - that is the point *)
  checki "no raw samples" 0 (Array.length (Engine.latencies_us engine));
  checki "histogram holds every arrival" (Engine.terminating_arrivals engine)
    (Histogram.count (Engine.latency_histogram engine));
  let tracer = match Engine.tracer engine with Some t -> t | None -> Alcotest.fail "tracer" in
  check "spans recorded" true (Tracer.recorded tracer > 0);
  Engine.sync_metrics engine;
  let s = Snapshot.json (Engine.metrics engine) in
  check "snapshot parses" true (json_parses s);
  check "events counter synced" true
    (contains s (Printf.sprintf "\"ocep_events_total\": %d" (Engine.events_processed engine)));
  check "spans counter synced" true
    (contains s (Printf.sprintf "\"ocep_spans_total\": %d" (Tracer.recorded tracer)))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition conformance                                   *)
(* ------------------------------------------------------------------ *)

(* A line-by-line validator of the text exposition format: every
   non-empty line must be # HELP, # TYPE, or a well-formed sample; TYPE
   comes once per family and before its samples; label values are
   quoted with no raw control characters; histogram le buckets are
   cumulative and end at +Inf, agreeing with _count. *)
let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = ':'

let valid_name n =
  n <> ""
  && (match n.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all is_name_char n

(* "name{a=\"v\",b=\"w\"} 3.5" -> Some (name, [labels], value) *)
let parse_sample line =
  let sp = try Some (String.rindex line ' ') with Not_found -> None in
  match sp with
  | None -> None
  | Some sp -> (
    let value = String.sub line (sp + 1) (String.length line - sp - 1) in
    let series = String.sub line 0 sp in
    if value = "" || (value <> "+Inf" && value <> "NaN" && float_of_string_opt value = None)
    then None
    else
      match String.index_opt series '{' with
      | None -> if valid_name series then Some (series, [], value) else None
      | Some i ->
        let name = String.sub series 0 i in
        if (not (valid_name name)) || series.[String.length series - 1] <> '}' then None
        else begin
          (* walk the label pairs: key="escaped" *)
          let body = String.sub series (i + 1) (String.length series - i - 2) in
          let labels = ref [] in
          let ok = ref true in
          let j = ref 0 in
          let n = String.length body in
          while !ok && !j < n do
            (match String.index_from_opt body !j '=' with
            | None -> ok := false
            | Some eq ->
              let key = String.sub body !j (eq - !j) in
              if (not (valid_name key)) || eq + 1 >= n || body.[eq + 1] <> '"' then ok := false
              else begin
                (* scan the quoted value honouring backslash escapes *)
                let k = ref (eq + 2) in
                let b = Buffer.create 8 in
                let closed = ref false in
                while (not !closed) && !k < n do
                  (match body.[!k] with
                  | '"' -> closed := true
                  | '\\' when !k + 1 < n ->
                    Buffer.add_char b body.[!k + 1];
                    incr k
                  | '\n' | '\r' -> ok := false
                  | c -> Buffer.add_char b c);
                  incr k
                done;
                if not !closed then ok := false
                else begin
                  labels := (key, Buffer.contents b) :: !labels;
                  if !k < n then
                    if body.[!k] = ',' then j := !k + 1 else ok := false
                  else j := !k
                end
              end)
          done;
          if !ok then Some (name, List.rev !labels, value) else None
        end)

let check_conformance s =
  let lines = String.split_on_char '\n' s in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  (* (base, labels minus le) -> cumulative bucket counts in order *)
  let buckets : (string * (string * string) list, int list) Hashtbl.t = Hashtbl.create 32 in
  let counts : (string * (string * string) list, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun lineno line ->
      let fail why = Alcotest.failf "line %d %S: %s" (lineno + 1) line why in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        match String.index_from_opt line 7 ' ' with
        | Some i when valid_name (String.sub line 7 (i - 7)) -> ()
        | _ -> fail "malformed HELP"
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ] when valid_name name ->
          if Hashtbl.mem typed name then fail "duplicate TYPE for family";
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then fail "unknown kind";
          Hashtbl.replace typed name ()
        | _ -> fail "malformed TYPE"
      end
      else
        match parse_sample line with
        | None -> fail "not HELP, TYPE, or a well-formed sample"
        | Some (name, labels, value) ->
          let family =
            List.fold_left
              (fun n suffix ->
                if
                  String.length n > String.length suffix
                  && String.sub n (String.length n - String.length suffix)
                       (String.length suffix)
                     = suffix
                then String.sub n 0 (String.length n - String.length suffix)
                else n)
              name [ "_bucket"; "_sum"; "_count" ]
          in
          if not (Hashtbl.mem typed name || Hashtbl.mem typed family) then
            fail "sample before its TYPE line";
          let is_bucket = family ^ "_bucket" = name in
          if is_bucket then begin
            let le = try List.assoc "le" labels with Not_found -> fail "bucket without le" in
            let rest = List.remove_assoc "le" labels in
            let prev = Option.value ~default:[] (Hashtbl.find_opt buckets (family, rest)) in
            let v = int_of_string value in
            (match prev with
            | last :: _ when v < last -> fail "bucket counts not cumulative"
            | _ -> ());
            ignore le;
            Hashtbl.replace buckets (family, rest) (v :: prev)
          end
          else if family ^ "_count" = name then
            Hashtbl.replace counts (family, labels) (int_of_string value))
    lines;
  (* every bucket series ends at +Inf and agrees with _count *)
  Hashtbl.iter
    (fun (family, rest) cums ->
      let total = List.hd cums in
      match Hashtbl.find_opt counts (family, rest) with
      | Some c when c = total -> ()
      | Some c -> Alcotest.failf "%s: +Inf bucket %d <> count %d" family total c
      | None -> Alcotest.failf "%s: bucket series without _count" family)
    buckets;
  (* and the raw text re-checks: last le of each family block is +Inf *)
  List.iter
    (fun line ->
      match parse_sample line with
      | Some (name, labels, _)
        when String.length name > 7
             && String.sub name (String.length name - 7) 7 = "_bucket" ->
        check "bucket has le" true (List.mem_assoc "le" labels)
      | _ -> ())
    lines

let live_exposition () =
  (* a registry with everything the real pipeline registers: engine
     counters, labeled per-pattern families, watermarks, ingest
     histograms, awkward label values *)
  let w = Ocep_harness.Cases.make "races" ~traces:4 ~seed:7 ~max_events:2_000 in
  let module Workload = Ocep_workloads.Workload in
  let module Engine = Ocep.Engine in
  let module Sim = Ocep_sim.Sim in
  let module Poet = Ocep_poet.Poet in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let config =
    { Engine.default_config with Engine.latency_sink = Engine.Histogram; trace_spans = true }
  in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let wm = Watermark.create (Engine.metrics engine) in
  Watermark.observe_decode wm ~id:0 ~dur_us:2.5;
  Watermark.observe_admit wm ~id:0 ~dur_us:0.5;
  Watermark.observe_match wm ~id:0 ~dur_us:7.;
  ignore
    (Metrics.counter (Engine.metrics engine)
       (Metrics.with_labels "ocep_test_awkward_total" [ ("v", "a\"b\\c\nd") ]));
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  Engine.sync_metrics engine;
  Snapshot.prometheus (Engine.metrics engine)

let prometheus_conformance () =
  let s = live_exposition () in
  check "has watermark stages" true (contains s "ocep_watermark{stage=\"decode\"}");
  check "has stage latency buckets" true (contains s "ocep_stage_latency_us_bucket");
  (* the discrimination-network counters: the race pattern's two leaves
     carry identical keys ([_, MPI_Send, $d]), so they alias a single
     node — and every MPI_Send dispatch through it saves an evaluation *)
  check "automaton node counter typed" true
    (contains s "# TYPE ocep_automaton_nodes_total counter");
  check "automaton nodes exported" true (contains s "\nocep_automaton_nodes_total 1\n");
  check "shared evals counter typed" true
    (contains s "# TYPE ocep_automaton_shared_evals_total counter");
  check "shared evals counted" false (contains s "\nocep_automaton_shared_evals_total 0\n");
  check_conformance s

let conformance_rejects_bad_lines () =
  let bad why s =
    check why true
      (try
         check_conformance s;
         false
       with _ -> true)
  in
  bad "sample before TYPE" "ocep_x_total 3\n";
  bad "garbage line" "# TYPE ocep_x counter\nnot a sample\n";
  bad "unquoted label" "# TYPE ocep_x counter\nocep_x{a=b} 1\n";
  bad "non-numeric value" "# TYPE ocep_x counter\nocep_x one\n";
  check_conformance "# TYPE ocep_x counter\nocep_x{a=\"b\"} 1\n"

(* ------------------------------------------------------------------ *)
(* Watermark                                                           *)
(* ------------------------------------------------------------------ *)

let watermark_basics () =
  let m = Metrics.create () in
  let wm = Watermark.create m in
  checki "decode starts -1" (-1) (Watermark.decode_watermark wm);
  checki "lag starts 0" 0 (Watermark.lag wm);
  Watermark.observe_decode wm ~id:0 ~dur_us:1.;
  Watermark.observe_decode wm ~id:5 ~dur_us:1.;
  Watermark.observe_decode wm ~id:3 ~dur_us:1.;
  checki "decode is running max" 5 (Watermark.decode_watermark wm);
  Watermark.observe_admit wm ~id:0 ~dur_us:0.5;
  Watermark.observe_admit wm ~id:1 ~dur_us:0.5;
  checki "admit follows releases" 1 (Watermark.admit_watermark wm);
  checki "lag = decode - admit" 4 (Watermark.lag wm);
  Watermark.observe_match wm ~id:1 ~dur_us:3.;
  checki "match watermark" 1 (Watermark.match_watermark wm);
  Watermark.observe_queue wm ~dur_us:10.;
  Watermark.set_depth wm 7;
  checki "decode latency counted" 3 (Histogram.count (Watermark.decode_latency wm));
  checki "queue latency counted" 1 (Histogram.count (Watermark.queue_latency wm));
  checki "admit latency counted" 2 (Histogram.count (Watermark.admit_latency wm));
  checki "match latency counted" 1 (Histogram.count (Watermark.match_latency wm));
  let s = Snapshot.prometheus m in
  check "decode gauge exposed" true (contains s "ocep_watermark{stage=\"decode\"} 5\n");
  check "admit gauge exposed" true (contains s "ocep_watermark{stage=\"admit\"} 1\n");
  check "lag exposed" true (contains s "ocep_ingest_lag_records 4\n");
  check "depth exposed" true (contains s "ocep_reorder_depth 7\n")

(* ------------------------------------------------------------------ *)
(* Serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_roundtrip () =
  let srv = Serve.start ~port:0 () in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let port = Serve.port srv in
  check "picked a port" true (port > 0);
  let get path = Serve.http_get ~host:"127.0.0.1" ~port ~path () in
  (* before the first publish: empty bodies, healthz defaults unhealthy *)
  let st, body = get "/metrics" in
  checki "metrics 200" 200 st;
  Alcotest.(check string) "empty before publish" "" body;
  let st, _ = get "/healthz" in
  checki "unhealthy before set_health" 503 st;
  let st, _ = get "/readyz" in
  checki "not ready before set_ready" 503 st;
  Serve.publish srv ~metrics:"ocep_up 1\n" ~snapshot:"{\"ocep_up\": 1}";
  Serve.set_health srv Serve.Serving;
  Serve.set_ready srv true;
  let st, body = get "/metrics" in
  checki "metrics 200" 200 st;
  Alcotest.(check string) "published body served" "ocep_up 1\n" body;
  let st, body = get "/snapshot.json" in
  checki "snapshot 200" 200 st;
  check "snapshot parses" true (match Minijson.parse body with Ok _ -> true | Error _ -> false);
  let st, body = get "/healthz" in
  checki "healthy" 200 st;
  Alcotest.(check string) "ok body" "ok\n" body;
  let st, _ = get "/readyz" in
  checki "ready" 200 st;
  (* health flips with engine state *)
  Serve.set_health srv (Serve.Not_serving "draining");
  let st, body = get "/healthz" in
  checki "unhealthy again" 503 st;
  check "reason served" true (contains body "draining");
  let st, _ = get "/nope" in
  checki "unknown path 404" 404 st;
  (* a second publish replaces the bodies *)
  Serve.publish srv ~metrics:"ocep_up 2\n" ~snapshot:"{}";
  let _, body = get "/metrics" in
  Alcotest.(check string) "republished" "ocep_up 2\n" body;
  Serve.stop srv;
  Serve.stop srv (* idempotent *)

let serve_rejects_non_get () =
  let srv = Serve.start ~port:0 () in
  Fun.protect ~finally:(fun () -> Serve.stop srv) @@ fun () ->
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ()) @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, Serve.port srv));
  let req = "POST /metrics HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let buf = Bytes.create 512 in
  let n = Unix.read sock buf 0 512 in
  let resp = Bytes.sub_string buf 0 n in
  check "405 on POST" true (contains resp "405")

(* ------------------------------------------------------------------ *)
(* Minijson                                                            *)
(* ------------------------------------------------------------------ *)

let minijson_basics () =
  let ok s = match Minijson.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let err s = match Minijson.parse s with Ok _ -> false | Error _ -> true in
  (match ok "{\"a\": 1, \"b\": [true, null, \"x\"]}" with
  | Minijson.Obj _ as o ->
    check "member a" true (Minijson.member "a" o = Some (Minijson.Num 1.));
    (match Minijson.member "b" o with
    | Some (Minijson.Arr [ Minijson.Bool true; Minijson.Null; Minijson.Str "x" ]) -> ()
    | _ -> Alcotest.fail "array members");
    check "missing member" true (Minijson.member "c" o = None)
  | _ -> Alcotest.fail "not an object");
  check "negative exponent" true (ok "-1.5e-3" = Minijson.Num (-0.0015));
  check "escapes" true (ok "\"a\\\"b\\\\c\\n\"" = Minijson.Str "a\"b\\c\n");
  check "unicode escape" true (ok "\"\\u0041\"" = Minijson.Str "A");
  check "to_num" true (Minijson.to_num (ok "3.5") = Some 3.5);
  check "to_str on num" true (Minijson.to_str (ok "3.5") = None);
  check "trailing garbage rejected" true (err "{} x");
  check "bare word rejected" true (err "nope");
  check "unterminated rejected" true (err "{\"a\": 1");
  check "empty rejected" true (err "");
  (* the real snapshot parses *)
  check "snapshot parses" true
    (match Minijson.parse (Snapshot.json (golden_registry ())) with
    | Ok (Minijson.Obj fields) -> List.mem_assoc "ocep_events_total" fields
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let provenance_roundtrip () =
  let all =
    [
      Provenance.Direct;
      Provenance.In_order;
      Provenance.Reordered;
      Provenance.Deduped;
      Provenance.Gap_skipped;
      Provenance.Late;
      Provenance.Orphaned;
    ]
  in
  List.iter
    (fun v ->
      check "int round trip" true
        (Provenance.verdict_of_int (Provenance.verdict_to_int v) = v);
      check "string nonempty" true (Provenance.verdict_to_string v <> ""))
    all;
  checki "distinct codes" (List.length all)
    (List.length (List.sort_uniq compare (List.map Provenance.verdict_to_int all)));
  check "admitted verdicts" true
    (List.map Provenance.admitted all
    = [ true; true; true; false; false; false; false ])

(* ------------------------------------------------------------------ *)
(* Typed tracer records                                                *)
(* ------------------------------------------------------------------ *)

let tracer_typed_records () =
  let t = Tracer.create ~capacity:8 in
  Tracer.record_search t ~name:"anchored" ~cat:"engine" ~ts_us:1. ~dur_us:2. ~tid:0 ~pattern:3
    ~anchor_leaf:1 ~nodes:42 ~backjumps:7 ~outcome:"found" ~pin_leaf:(-1) ~pin_trace:(-1);
  Tracer.record_search t ~name:"pinned" ~cat:"worker" ~ts_us:2. ~dur_us:1. ~tid:4 ~pattern:0
    ~anchor_leaf:0 ~nodes:5 ~backjumps:0 ~outcome:"none" ~pin_leaf:2 ~pin_trace:9;
  Tracer.record_arrival t ~ts_us:3. ~dur_us:0.5 ~tid:0 ~trace:1 ~index:17 ~etype:"req"
    ~anchors:2;
  (match Tracer.spans t with
  | [ s1; s2; s3 ] ->
    Alcotest.(check string) "search name" "anchored" s1.Tracer.name;
    check "search args" true
      (s1.Tracer.args
      = [
          ("pattern", Tracer.Int 3);
          ("anchor_leaf", Tracer.Int 1);
          ("nodes", Tracer.Int 42);
          ("backjumps", Tracer.Int 7);
          ("outcome", Tracer.Str "found");
        ]);
    (* a pinned search leads with the pin *)
    check "pin args first" true
      (match s2.Tracer.args with
      | ("pin_leaf", Tracer.Int 2) :: ("pin_trace", Tracer.Int 9) :: _ -> true
      | _ -> false);
    Alcotest.(check string) "arrival name" "arrival" s3.Tracer.name;
    check "arrival args" true
      (s3.Tracer.args
      = [
          ("trace", Tracer.Int 1);
          ("index", Tracer.Int 17);
          ("etype", Tracer.Str "req");
          ("anchors", Tracer.Int 2);
        ])
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l));
  checki "recorded" 3 (Tracer.recorded t)

(* ------------------------------------------------------------------ *)
(* Span drop counter in the registry                                   *)
(* ------------------------------------------------------------------ *)

let spans_dropped_exposed () =
  let w = Ocep_harness.Cases.make "races" ~traces:4 ~seed:7 ~max_events:2_000 in
  let module Workload = Ocep_workloads.Workload in
  let module Engine = Ocep.Engine in
  let module Sim = Ocep_sim.Sim in
  let module Poet = Ocep_poet.Poet in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let config =
    { Engine.default_config with Engine.trace_spans = true; trace_capacity = 16 }
  in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  let tracer = match Engine.tracer engine with Some t -> t | None -> Alcotest.fail "tracer" in
  check "tiny ring overflowed" true (Tracer.dropped tracer > 0);
  Engine.sync_metrics engine;
  let s = Snapshot.prometheus (Engine.metrics engine) in
  check "drop counter exposed" true
    (contains s (Printf.sprintf "ocep_spans_dropped_total %d\n" (Tracer.dropped tracer)));
  check "recorded counter exposed" true
    (contains s (Printf.sprintf "ocep_spans_total %d\n" (Tracer.recorded tracer)))

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact moments" `Quick hist_exact_moments;
          Alcotest.test_case "empty raises" `Quick hist_empty_raises;
          Alcotest.test_case "nan raises" `Quick hist_nan_raises;
          Alcotest.test_case "out of range" `Quick hist_out_of_range;
          Alcotest.test_case "merge" `Quick hist_merge;
          QCheck_alcotest.to_alcotest hist_quantile_error_prop;
          QCheck_alcotest.to_alcotest of_histogram_matches_of_samples_prop;
        ] );
      ( "summary",
        [
          Alcotest.test_case "quantile edges" `Quick summary_quantile_edges;
          Alcotest.test_case "nan rejected" `Quick summary_nan_raises;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick metrics_basics;
          Alcotest.test_case "registration order" `Quick metrics_registration_order;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound" `Quick tracer_wraparound;
          Alcotest.test_case "before wrapping" `Quick tracer_not_wrapped;
          Alcotest.test_case "dump shape" `Quick tracer_dump_shape;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus golden" `Quick prometheus_golden;
          Alcotest.test_case "escape label value" `Quick escape_label_values;
          Alcotest.test_case "with_labels keys" `Quick with_labels_builds_escaped_keys;
          Alcotest.test_case "prometheus escapes labels" `Quick prometheus_escapes_label_values;
          Alcotest.test_case "labeled histogram exposition" `Quick prometheus_labeled_histogram;
          Alcotest.test_case "json golden" `Quick json_golden;
        ] );
      ("engine", [ Alcotest.test_case "telemetry end to end" `Quick telemetry_engine ]);
      ( "conformance",
        [
          Alcotest.test_case "live exposition parses" `Quick prometheus_conformance;
          Alcotest.test_case "validator rejects bad lines" `Quick conformance_rejects_bad_lines;
        ] );
      ( "watermark",
        [ Alcotest.test_case "stages, lag and gauges" `Quick watermark_basics ] );
      ( "serve",
        [
          Alcotest.test_case "endpoint round trip" `Quick serve_roundtrip;
          Alcotest.test_case "non-GET rejected" `Quick serve_rejects_non_get;
        ] );
      ("minijson", [ Alcotest.test_case "parse and access" `Quick minijson_basics ]);
      ( "provenance",
        [ Alcotest.test_case "verdict round trip" `Quick provenance_roundtrip ] );
      ( "spans",
        [
          Alcotest.test_case "typed records" `Quick tracer_typed_records;
          Alcotest.test_case "drop counter exposed" `Quick spans_dropped_exposed;
        ] );
    ]
