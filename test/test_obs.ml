(* The observability layer: bounded histogram, metrics registry, span
   ring, and the two expositions. *)

module Histogram = Ocep_stats.Histogram
module Summary = Ocep_stats.Summary
module Metrics = Ocep_obs.Metrics
module Tracer = Ocep_obs.Tracer
module Snapshot = Ocep_obs.Snapshot

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let hist_exact_moments () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1.; 10.; 100.; 1000. ];
  checki "count" 4 (Histogram.count h);
  checkf "sum" 1111. (Histogram.sum h);
  checkf "min" 1. (Histogram.min_value h);
  checkf "max" 1000. (Histogram.max_value h);
  checkf "mean" 277.75 (Histogram.mean h)

let hist_empty_raises () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  check "quantile raises" true
    (try
       ignore (Histogram.quantile h 0.5);
       false
     with Invalid_argument _ -> true);
  check "min raises" true
    (try
       ignore (Histogram.min_value h);
       false
     with Invalid_argument _ -> true)

let hist_nan_raises () =
  let h = Histogram.create () in
  check "nan raises" true
    (try
       Histogram.record h Float.nan;
       false
     with Invalid_argument _ -> true)

let hist_out_of_range () =
  let lo, hi = Histogram.range in
  let h = Histogram.create () in
  Histogram.record h (-5.);
  (* negative -> underflow *)
  Histogram.record h (lo /. 10.);
  Histogram.record h (hi *. 10.);
  checki "count" 3 (Histogram.count h);
  (* the quantile answer is clamped to the exact extremes *)
  checkf "q0 is min" (-5.) (Histogram.quantile h 0.);
  checkf "q1 is max" (hi *. 10.) (Histogram.quantile h 1.)

let hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 1.; 2.; 3. ];
  List.iter (Histogram.record b) [ 100.; 200. ];
  let m = Histogram.merge a b in
  checki "merged count" 5 (Histogram.count m);
  checkf "merged sum" 306. (Histogram.sum m);
  checkf "merged min" 1. (Histogram.min_value m);
  checkf "merged max" 200. (Histogram.max_value m);
  (* arguments unchanged *)
  checki "a count" 3 (Histogram.count a);
  checki "b count" 2 (Histogram.count b);
  (* merging is the same as recording everything into one histogram *)
  let all = Histogram.create () in
  List.iter (Histogram.record all) [ 1.; 2.; 3.; 100.; 200. ];
  List.iter
    (fun q -> checkf "same quantile" (Histogram.quantile all q) (Histogram.quantile m q))
    [ 0.; 0.25; 0.5; 0.75; 0.95; 1. ]

(* the documented error bound: any quantile is within one bucket width
   (a factor of bucket_ratio) of the order statistic it stands for *)
let hist_quantile_error_prop =
  let lo, hi = Histogram.range in
  QCheck.Test.make ~name:"histogram quantile within one bucket of the order statistic"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 200) (float_range (lo *. 2.) (hi /. 2.)))
    (fun l ->
      let sorted = Array.of_list (List.sort Float.compare l) in
      let n = Array.length sorted in
      let h = Histogram.create () in
      Array.iter (Histogram.record h) sorted;
      List.for_all
        (fun q ->
          let est = Histogram.quantile h q in
          let x = sorted.(int_of_float (q *. float_of_int (n - 1))) in
          est >= x /. Histogram.bucket_ratio && est <= x *. Histogram.bucket_ratio)
        [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ])

(* Summary.of_histogram vs Summary.of_samples on the same data: exact
   fields equal; each quartile within one bucket width of the interval
   spanned by the two order statistics of_samples interpolates between *)
let of_histogram_matches_of_samples_prop =
  let lo, hi = Histogram.range in
  QCheck.Test.make ~name:"of_histogram quartiles match of_samples within bucket resolution"
    ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 200) (float_range (lo *. 2.) (hi /. 2.)))
    (fun l ->
      let sorted = Array.of_list (List.sort Float.compare l) in
      let n = Array.length sorted in
      let h = Histogram.create () in
      Array.iter (Histogram.record h) sorted;
      let sh = Summary.of_histogram h and ss = Summary.of_samples sorted in
      let close q v =
        let r = q *. float_of_int (n - 1) in
        let x_lo = sorted.(int_of_float (Float.floor r))
        and x_hi = sorted.(int_of_float (Float.ceil r)) in
        v >= x_lo /. Histogram.bucket_ratio && v <= x_hi *. Histogram.bucket_ratio
      in
      sh.Summary.n = ss.Summary.n
      && sh.Summary.min = ss.Summary.min
      && sh.Summary.max = ss.Summary.max
      && Float.abs (sh.Summary.mean -. ss.Summary.mean) <= 1e-9 *. Float.abs ss.Summary.mean
      && close 0.25 sh.Summary.q1
      && close 0.5 sh.Summary.median
      && close 0.75 sh.Summary.q3)

(* ------------------------------------------------------------------ *)
(* Summary edge cases                                                  *)
(* ------------------------------------------------------------------ *)

let summary_quantile_edges () =
  checkf "n=1 q=0" 7. (Summary.quantile [| 7. |] 0.);
  checkf "n=1 q=0.5" 7. (Summary.quantile [| 7. |] 0.5);
  checkf "n=1 q=1" 7. (Summary.quantile [| 7. |] 1.);
  let sorted = [| 1.; 2.; 3.; 4. |] in
  checkf "q=0 is min" 1. (Summary.quantile sorted 0.);
  checkf "q=1 is max" 4. (Summary.quantile sorted 1.);
  check "q<0 raises" true
    (try
       ignore (Summary.quantile sorted (-0.1));
       false
     with Invalid_argument _ -> true);
  check "q>1 raises" true
    (try
       ignore (Summary.quantile sorted 1.1);
       false
     with Invalid_argument _ -> true)

let summary_nan_raises () =
  check "nan rejected" true
    (try
       ignore (Summary.of_samples [| 1.; Float.nan; 3. |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"test counter" "ocep_test_total" in
  let g = Metrics.gauge m "ocep_test_gauge" in
  Metrics.incr c ();
  Metrics.incr c ~by:2 ();
  Metrics.set g 1.5;
  checki "counter" 3 (Metrics.counter_value c);
  checkf "gauge" 1.5 (Metrics.gauge_value g);
  (* re-registering the same name returns the same instrument *)
  let c' = Metrics.counter m "ocep_test_total" in
  Metrics.incr c' ();
  checki "same instrument" 4 (Metrics.counter_value c);
  Metrics.set_counter c 10;
  checki "set_counter" 10 (Metrics.counter_value c);
  check "negative incr raises" true
    (try
       Metrics.incr c ~by:(-1) ();
       false
     with Invalid_argument _ -> true);
  check "kind mismatch raises" true
    (try
       ignore (Metrics.gauge m "ocep_test_total");
       false
     with Invalid_argument _ -> true)

let metrics_registration_order () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "ocep_a_total");
  ignore (Metrics.gauge m "ocep_b");
  ignore (Metrics.histogram m "ocep_c_us");
  let names = List.map (fun (it : Metrics.item) -> it.Metrics.name) (Metrics.items m) in
  Alcotest.(check (list string)) "order" [ "ocep_a_total"; "ocep_b"; "ocep_c_us" ] names

(* ------------------------------------------------------------------ *)
(* Tracer ring                                                         *)
(* ------------------------------------------------------------------ *)

let span i =
  ( Printf.sprintf "s%d" i,
    "t",
    float_of_int i,
    1.,
    0,
    [ ("i", Tracer.Int i); ("f", Tracer.Float 0.5); ("s", Tracer.Str "x\"y") ] )

let record_span t (name, cat, ts_us, dur_us, tid, args) =
  Tracer.record t ~name ~cat ~ts_us ~dur_us ~tid ~args

let tracer_wraparound () =
  let t = Tracer.create ~capacity:4 in
  checki "capacity" 4 (Tracer.capacity t);
  for i = 0 to 9 do
    record_span t (span i)
  done;
  checki "length" 4 (Tracer.length t);
  checki "recorded" 10 (Tracer.recorded t);
  checki "dropped" 6 (Tracer.dropped t);
  (* the ring keeps the most recent spans, oldest first *)
  Alcotest.(check (list string))
    "retained"
    [ "s6"; "s7"; "s8"; "s9" ]
    (List.map (fun (s : Tracer.span) -> s.Tracer.name) (Tracer.spans t))

let tracer_not_wrapped () =
  let t = Tracer.create ~capacity:8 in
  for i = 0 to 2 do
    record_span t (span i)
  done;
  checki "length" 3 (Tracer.length t);
  checki "dropped" 0 (Tracer.dropped t);
  Alcotest.(check (list string))
    "order" [ "s0"; "s1"; "s2" ]
    (List.map (fun (s : Tracer.span) -> s.Tracer.name) (Tracer.spans t));
  check "capacity must be positive" true
    (try
       ignore (Tracer.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

let tracer_dump_shape () =
  let t = Tracer.create ~capacity:4 in
  for i = 0 to 5 do
    record_span t (span i)
  done;
  let path = Filename.temp_file "ocep_trace" ".json" in
  let oc = open_out path in
  Tracer.dump oc t;
  close_out oc;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check "traceEvents" true (contains s "\"traceEvents\": [");
  check "complete events" true (contains s "\"ph\": \"X\"");
  check "keeps newest" true (contains s "\"name\": \"s5\"");
  check "drops oldest" true (not (contains s "\"name\": \"s1\""));
  check "escapes arg strings" true (contains s "\"s\": \"x\\\"y\"");
  check "bookkeeping" true (contains s "\"spans_recorded\": 6, \"spans_dropped\": 2")

(* ------------------------------------------------------------------ *)
(* Expositions                                                         *)
(* ------------------------------------------------------------------ *)

let golden_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"Events processed" "ocep_events_total" in
  Metrics.incr c ~by:42 ();
  let g0 = Metrics.gauge m ~help:"Busy seconds" "ocep_busy_seconds{worker=\"0\"}" in
  let g1 = Metrics.gauge m ~help:"Busy seconds" "ocep_busy_seconds{worker=\"1\"}" in
  Metrics.set g0 0.25;
  Metrics.set g1 1.5;
  let h = Metrics.histogram m ~help:"Latency" "ocep_latency_us" in
  List.iter (Histogram.record h) [ 1.; 1.05; 10.; 100. ];
  ignore (Metrics.histogram m "ocep_empty_us");
  m

let prometheus_golden () =
  let s = Snapshot.prometheus (golden_registry ()) in
  let lines = String.split_on_char '\n' s in
  let count p = List.length (List.filter p lines) in
  check "counter line" true (contains s "ocep_events_total 42\n");
  check "help line" true (contains s "# HELP ocep_events_total Events processed\n");
  check "counter type" true (contains s "# TYPE ocep_events_total counter\n");
  (* one TYPE line for the two labeled gauges of the same family *)
  checki "family TYPE once" 1
    (count (fun l -> l = "# TYPE ocep_busy_seconds gauge"));
  check "labeled gauge" true (contains s "ocep_busy_seconds{worker=\"0\"} 0.25\n");
  check "labeled gauge 2" true (contains s "ocep_busy_seconds{worker=\"1\"} 1.5\n");
  check "histogram type" true (contains s "# TYPE ocep_latency_us histogram\n");
  check "+Inf bucket" true (contains s "ocep_latency_us_bucket{le=\"+Inf\"} 4\n");
  check "sum" true (contains s "ocep_latency_us_sum 112.05\n");
  check "count" true (contains s "ocep_latency_us_count 4\n");
  (* cumulative bucket counts are monotone and end at the total *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 24 && String.sub l 0 24 = "ocep_latency_us_bucket{l" then
          int_of_string_opt (String.sub l (String.rindex l ' ' + 1)
                               (String.length l - String.rindex l ' ' - 1))
        else None)
      lines
  in
  check "monotone" true (List.sort compare bucket_counts = bucket_counts);
  checki "ends at count" 4 (List.nth bucket_counts (List.length bucket_counts - 1));
  check "empty histogram still exposed" true (contains s "ocep_empty_us_count 0\n")

(* a tiny JSON validator: enough to prove the exposition is parseable *)
let rec skip_ws s i = if i < String.length s && s.[i] = ' ' then skip_ws s (i + 1) else i

let rec parse_value s i =
  let i = skip_ws s i in
  match s.[i] with
  | '{' -> parse_object s (i + 1)
  | '"' -> parse_string s (i + 1)
  | _ ->
    let j = ref i in
    while
      !j < String.length s
      && (match s.[!j] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr j
    done;
    if !j = i then failwith (Printf.sprintf "bad value at %d" i);
    ignore (float_of_string (String.sub s i (!j - i)));
    !j

and parse_string s i =
  if s.[i] = '"' then i + 1
  else if s.[i] = '\\' then parse_string s (i + 2)
  else parse_string s (i + 1)

and parse_object s i =
  let i = skip_ws s i in
  if s.[i] = '}' then i + 1
  else
    let rec members i =
      let i = skip_ws s i in
      if s.[i] <> '"' then failwith (Printf.sprintf "expected key at %d" i);
      let i = parse_string s (i + 1) in
      let i = skip_ws s i in
      if s.[i] <> ':' then failwith (Printf.sprintf "expected : at %d" i);
      let i = parse_value s (i + 1) in
      let i = skip_ws s i in
      if s.[i] = ',' then members (i + 1)
      else if s.[i] = '}' then i + 1
      else failwith (Printf.sprintf "expected , or } at %d" i)
    in
    members i

let json_parses s =
  match parse_value s 0 with
  | i -> skip_ws s i = String.length s
  | exception _ -> false

let json_golden () =
  let s = Snapshot.json (golden_registry ()) in
  check "one line" true (not (String.contains s '\n'));
  check "parses" true (json_parses s);
  check "counter" true (contains s "\"ocep_events_total\": 42");
  (* the labeled name's inner quotes are escaped in the key *)
  check "escaped label key" true (contains s "\"ocep_busy_seconds{worker=\\\"0\\\"}\": 0.25");
  check "histogram fields" true
    (contains s "\"ocep_latency_us\": {\"count\": 4, \"sum\": 112.05");
  check "tail fields" true (contains s "\"p999\":");
  check "empty histogram" true (contains s "\"ocep_empty_us\": {\"count\": 0}")

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Label escaping and labeled exposition                               *)
(* ------------------------------------------------------------------ *)

let escape_label_values () =
  let checks = Alcotest.(check string) in
  checks "clean passes through" "fast" (Metrics.escape_label_value "fast");
  checks "quote" "a\\\"b" (Metrics.escape_label_value "a\"b");
  checks "backslash" "a\\\\b" (Metrics.escape_label_value "a\\b");
  checks "newline" "a\\nb" (Metrics.escape_label_value "a\nb");
  checks "all three" "\\\\\\\"\\n" (Metrics.escape_label_value "\\\"\n")

let with_labels_builds_escaped_keys () =
  let checks = Alcotest.(check string) in
  checks "no labels" "ocep_x" (Metrics.with_labels "ocep_x" []);
  checks "one label" "ocep_x{p=\"a\"}" (Metrics.with_labels "ocep_x" [ ("p", "a") ]);
  checks "escapes and order"
    "ocep_x{p=\"a\\\"b\",q=\"c\\\\d\"}"
    (Metrics.with_labels "ocep_x" [ ("p", "a\"b"); ("q", "c\\d") ])

let prometheus_escapes_label_values () =
  let m = Metrics.create () in
  let name = Metrics.with_labels "ocep_matches_total" [ ("pattern", "A \"x\"\\B\nC") ] in
  Metrics.incr (Metrics.counter m name) ();
  let s = Snapshot.prometheus m in
  check "exposition escapes quote, backslash, newline" true
    (contains s "ocep_matches_total{pattern=\"A \\\"x\\\"\\\\B\\nC\"} 1\n");
  (* a raw newline inside a label value would split the sample line *)
  check "no raw newline inside the sample" false (contains s "B\nC\"} 1\n")

let prometheus_labeled_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m (Metrics.with_labels "ocep_latency_us" [ ("pattern", "p0") ]) in
  List.iter (Histogram.record h) [ 1.; 10. ];
  let s = Snapshot.prometheus m in
  check "bucket splices le into the label set" true
    (contains s "ocep_latency_us_bucket{pattern=\"p0\",le=\"+Inf\"} 2\n");
  check "sum keeps the labels" true (contains s "ocep_latency_us_sum{pattern=\"p0\"} 11\n");
  check "count keeps the labels" true (contains s "ocep_latency_us_count{pattern=\"p0\"} 2\n")

let telemetry_engine () =
  let w = Ocep_harness.Cases.make "races" ~traces:4 ~seed:7 ~max_events:2_000 in
  let module Workload = Ocep_workloads.Workload in
  let module Engine = Ocep.Engine in
  let module Sim = Ocep_sim.Sim in
  let module Poet = Ocep_poet.Poet in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let config =
    { Engine.default_config with Engine.latency_sink = Engine.Histogram; trace_spans = true }
  in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  (* under the Histogram sink the raw vector stays empty - that is the point *)
  checki "no raw samples" 0 (Array.length (Engine.latencies_us engine));
  checki "histogram holds every arrival" (Engine.terminating_arrivals engine)
    (Histogram.count (Engine.latency_histogram engine));
  let tracer = match Engine.tracer engine with Some t -> t | None -> Alcotest.fail "tracer" in
  check "spans recorded" true (Tracer.recorded tracer > 0);
  Engine.sync_metrics engine;
  let s = Snapshot.json (Engine.metrics engine) in
  check "snapshot parses" true (json_parses s);
  check "events counter synced" true
    (contains s (Printf.sprintf "\"ocep_events_total\": %d" (Engine.events_processed engine)));
  check "spans counter synced" true
    (contains s
       (Printf.sprintf "\"ocep_trace_spans_total\": %d" (Tracer.recorded tracer)))

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact moments" `Quick hist_exact_moments;
          Alcotest.test_case "empty raises" `Quick hist_empty_raises;
          Alcotest.test_case "nan raises" `Quick hist_nan_raises;
          Alcotest.test_case "out of range" `Quick hist_out_of_range;
          Alcotest.test_case "merge" `Quick hist_merge;
          QCheck_alcotest.to_alcotest hist_quantile_error_prop;
          QCheck_alcotest.to_alcotest of_histogram_matches_of_samples_prop;
        ] );
      ( "summary",
        [
          Alcotest.test_case "quantile edges" `Quick summary_quantile_edges;
          Alcotest.test_case "nan rejected" `Quick summary_nan_raises;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick metrics_basics;
          Alcotest.test_case "registration order" `Quick metrics_registration_order;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound" `Quick tracer_wraparound;
          Alcotest.test_case "before wrapping" `Quick tracer_not_wrapped;
          Alcotest.test_case "dump shape" `Quick tracer_dump_shape;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus golden" `Quick prometheus_golden;
          Alcotest.test_case "escape label value" `Quick escape_label_values;
          Alcotest.test_case "with_labels keys" `Quick with_labels_builds_escaped_keys;
          Alcotest.test_case "prometheus escapes labels" `Quick prometheus_escapes_label_values;
          Alcotest.test_case "labeled histogram exposition" `Quick prometheus_labeled_histogram;
          Alcotest.test_case "json golden" `Quick json_golden;
        ] );
      ("engine", [ Alcotest.test_case "telemetry end to end" `Quick telemetry_engine ]);
    ]
