(* Property suite: the interval-compressed pool against the dense
   reference.

   Every Vc_pool operation must be observably identical to the
   allocating Vclock it replaces, whatever encoding a snapshot landed
   in — interval runs, packed dense (two 31-bit values per word) or
   unpacked dense.  The generators are therefore biased toward the
   encoder's decision boundaries: clocks built from few long runs
   (stays compressed), clocks with run counts straddling the
   [max_runs] fallback threshold, runs that end exactly at the last
   trace, single-entry runs, zero gaps, and values at/above 2^31
   (which disqualify the packed form pool-wide). *)

module Vclock = Ocep_base.Vclock
module Vc_pool = Ocep_base.Vc_pool
module Prng = Ocep_base.Prng

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* A dense clock of dimension [dim] assembled from value runs.  Values
   of 0 leave gaps (uncovered traces); [big] mixes in values >= 2^31
   to force the unpacked dense path. *)
let run_shaped_clock ?(big = false) dim st =
  let a = Array.make dim 0 in
  let pos = ref 0 in
  while !pos < dim do
    (* short runs push past max_runs; long runs stay compressed *)
    let len = 1 + QCheck.Gen.int_bound (max 1 (dim - !pos - 1)) st in
    let len = min len (dim - !pos) in
    let v =
      match QCheck.Gen.int_bound 9 st with
      | 0 | 1 -> 0 (* gap *)
      | 2 when big -> (1 lsl 31) + QCheck.Gen.int_bound 1000 st
      | n -> n * (1 + QCheck.Gen.int_bound 50 st)
    in
    for i = !pos to !pos + len - 1 do
      a.(i) <- v
    done;
    pos := !pos + len
  done;
  a

let clock_pair_gen st =
  let dim = 1 + QCheck.Gen.int_bound 15 st in
  let big = QCheck.Gen.bool st in
  (dim, run_shaped_clock ~big dim st, run_shaped_clock ~big dim st)

let clock_pair_arb =
  QCheck.make
    ~print:(fun (dim, a, b) ->
      Printf.sprintf "dim=%d a=%s b=%s" dim
        (QCheck.Print.(array int) a)
        (QCheck.Print.(array int) b))
    clock_pair_gen

let pmax = Array.map2 max

(* ------------------------------------------------------------------ *)
(* Snapshot-level operations vs dense arrays                           *)
(* ------------------------------------------------------------------ *)

let roundtrip_prop =
  QCheck.Test.make ~name:"encode/to_array roundtrip over run-shaped clocks" ~count:1000
    clock_pair_arb (fun (dim, a, b) ->
      let p = Vc_pool.create ~dim () in
      let ha = Vc_pool.encode p a and hb = Vc_pool.encode p b in
      Vc_pool.to_array p ha = a && Vc_pool.to_array p hb = b
      && Array.init dim (fun i -> Vc_pool.read p ha ~entry:i) = a)

let leq_equal_prop =
  QCheck.Test.make ~name:"leq/equal agree with pointwise dense comparison" ~count:1000
    clock_pair_arb (fun (_, a, b) ->
      let p = Vc_pool.create ~dim:(Array.length a) () in
      let ha = Vc_pool.encode p a and hb = Vc_pool.encode p b in
      Vc_pool.leq p ha hb = Array.for_all2 ( >= ) b a
      && Vc_pool.leq p hb ha = Array.for_all2 ( >= ) a b
      && Vc_pool.leq p ha ha
      && Vc_pool.equal p ha hb = (a = b))

let merge_prop =
  QCheck.Test.make ~name:"merge agrees with pointwise max" ~count:1000 clock_pair_arb
    (fun (_, a, b) ->
      let p = Vc_pool.create ~dim:(Array.length a) () in
      let ha = Vc_pool.encode p a and hb = Vc_pool.encode p b in
      Vc_pool.to_array p (Vc_pool.merge p ha hb) = pmax a b)

let tick_merge_prop =
  QCheck.Test.make ~name:"tick_merge agrees with Vclock.tick_merge" ~count:1000
    QCheck.(pair clock_pair_arb (int_bound 1000))
    (fun ((dim, a, b), tr) ->
      let tr = tr mod dim in
      let p = Vc_pool.create ~dim () in
      let ha = Vc_pool.encode p a and hb = Vc_pool.encode p b in
      let expect =
        Vclock.to_array (Vclock.tick_merge (Vclock.of_array a) (Vclock.of_array b) ~trace:tr)
      in
      Vc_pool.to_array p (Vc_pool.tick_merge p ha hb ~trace:tr) = expect)

(* boundary shapes the random generator only rarely lands on exactly *)
let boundary_cases () =
  let cases =
    [
      [| 0; 0; 0; 0 |] (* all gaps *);
      [| 5; 5; 5; 5 |] (* one full-width run *);
      [| 1; 2; 3; 4 |] (* every entry its own run: forced dense *);
      [| 0; 0; 0; 7 |] (* run ending exactly at the last trace *);
      [| 7; 0; 0; 0 |] (* run starting at trace 0 *);
      [| 1 lsl 31; 1; 1; 1 |] (* big value: unpacked dense *);
      [| (1 lsl 31) - 1; 1; 1; 1 |] (* largest packable value *);
      [| 3 |] (* dim = 1 *);
    ]
  in
  List.iter
    (fun a ->
      let dim = Array.length a in
      let p = Vc_pool.create ~dim () in
      let h = Vc_pool.encode p a in
      check (Printf.sprintf "roundtrip %s" (QCheck.Print.(array int) a)) true
        (Vc_pool.to_array p h = a);
      let m = Vc_pool.merge p h h in
      check "self-merge is identity" true (Vc_pool.to_array p m = a);
      check "self-leq" true (Vc_pool.leq p h h && Vc_pool.equal p h m))
    cases

(* run counts straddling the fallback threshold: d distinct values over
   dimension d, sliced so the run count walks 1 .. d *)
let fallback_threshold () =
  let dim = 12 in
  for nruns = 1 to dim do
    let a = Array.init dim (fun i -> 1 + (i * nruns / dim)) in
    let p = Vc_pool.create ~dim () in
    let h = Vc_pool.encode p a in
    check (Printf.sprintf "threshold roundtrip (%d runs)" nruns) true
      (Vc_pool.to_array p h = a);
    (* the encoder may pick runs or dense, but never a lying run count *)
    let r = Vc_pool.runs p h in
    check "runs consistent with is_dense" true (Vc_pool.is_dense p h = (r = -1))
  done

(* ------------------------------------------------------------------ *)
(* Live-row evolution vs a Vclock reference model                      *)
(* ------------------------------------------------------------------ *)

(* Drive a pool and an array of persistent Vclocks through the same
   random tick / send / receive schedule — the exact shape of the POET
   ingest loop, including [recv_update]'s fused merge+tick+snapshot —
   and require every snapshot and every live row to agree.  Long
   schedules push traces over the dense-fallback threshold and back,
   exercising the per-trace dense hint. *)
let evolution_agrees ~dim ~events ~seed =
  let prng = Prng.create seed in
  let pool = Vc_pool.create ~dim () in
  let refs = Array.init dim (fun _ -> Vclock.make ~dim) in
  let pending = ref [] in (* (handle, reference clock) of unreceived sends *)
  let ok = ref true in
  let agree h v =
    if Vc_pool.to_array pool h <> Vclock.to_array v then ok := false
  in
  for _ = 1 to events do
    let tr = Prng.int prng dim in
    match Prng.int prng 3 with
    | 0 ->
      ignore (Vc_pool.tick pool ~trace:tr : int);
      refs.(tr) <- Vclock.tick refs.(tr) ~trace:tr
    | 1 ->
      (* send: tick, then freeze the row *)
      ignore (Vc_pool.tick pool ~trace:tr : int);
      refs.(tr) <- Vclock.tick refs.(tr) ~trace:tr;
      let h = Vc_pool.snapshot pool ~trace:tr in
      agree h refs.(tr);
      pending := (h, refs.(tr)) :: !pending
    | _ -> (
      (* receive (if something is pending): the fused hot path *)
      match !pending with
      | [] -> ()
      | (h, sent) :: rest ->
        pending := rest;
        let hh = Vc_pool.recv_update pool ~trace:tr h in
        refs.(tr) <- Vclock.tick_merge refs.(tr) sent ~trace:tr;
        agree hh refs.(tr);
        if Vc_pool.get pool ~trace:tr ~entry:tr <> Vclock.get refs.(tr) tr then ok := false)
  done;
  for tr = 0 to dim - 1 do
    if Vc_pool.current_to_array pool ~trace:tr <> Vclock.to_array refs.(tr) then ok := false
  done;
  !ok

let evolution_prop =
  QCheck.Test.make ~name:"pool evolution matches Vclock model (fused receive)" ~count:60
    QCheck.(triple (int_range 1 24) (int_range 10 800) (int_bound 1_000_000))
    (fun (dim, events, seed) -> evolution_agrees ~dim ~events ~seed)

let evolution_long () =
  (* one deep deterministic schedule per shape class *)
  List.iter
    (fun (dim, events, seed) ->
      check (Printf.sprintf "evolution dim=%d events=%d" dim events) true
        (evolution_agrees ~dim ~events ~seed))
    [ (1, 2000, 1); (2, 2000, 2); (20, 20_000, 2013); (50, 10_000, 7); (64, 5000, 11) ]

(* Drive a live value across the 15-bit quad-packed lane limit (2^15):
   the pool-wide [wide_vals] flag must retire the -3 form for every
   later dense snapshot while old -3 snapshots stay readable.  Two
   traces ping-pong sends so both the send ([snapshot]) and the receive
   ([recv_update]) sides cross the boundary under the dense hint, with
   reference clocks checked on both sides throughout the window. *)
let wide_boundary () =
  let dim = 6 in
  let pool = Vc_pool.create ~dim () in
  let refs = Array.init dim (fun _ -> Vclock.make ~dim) in
  (* push every trace over the dense-fallback threshold so snapshots
     take the hinted packed forms *)
  let early = ref [] in
  for tr = 0 to dim - 1 do
    for _ = 1 to 1 + tr do
      ignore (Vc_pool.tick pool ~trace:tr : int);
      refs.(tr) <- Vclock.tick refs.(tr) ~trace:tr
    done;
    let h = Vc_pool.snapshot pool ~trace:tr in
    early := (h, Vclock.to_array refs.(tr)) :: !early;
    for peer = 0 to dim - 1 do
      if peer <> tr then begin
        let hh = Vc_pool.recv_update pool ~trace:peer h in
        refs.(peer) <- Vclock.tick_merge refs.(peer) refs.(tr) ~trace:peer;
        if Vc_pool.to_array pool hh <> Vclock.to_array refs.(peer) then
          Alcotest.failf "setup receive diverged at trace %d <- %d" peer tr
      end
    done
  done;
  (* march trace 0's own entry across 32768, ping-ponging with trace 1
     so packed sends and fused receives straddle the crossing *)
  let target = 33_000 in
  while Vc_pool.get pool ~trace:0 ~entry:0 < target do
    for _ = 1 to 97 do
      ignore (Vc_pool.tick pool ~trace:0 : int);
      refs.(0) <- Vclock.tick refs.(0) ~trace:0
    done;
    ignore (Vc_pool.tick pool ~trace:0 : int);
    refs.(0) <- Vclock.tick refs.(0) ~trace:0;
    let h = Vc_pool.snapshot pool ~trace:0 in
    if Vc_pool.to_array pool h <> Vclock.to_array refs.(0) then
      Alcotest.failf "send snapshot diverged at own=%d" (Vc_pool.get pool ~trace:0 ~entry:0);
    let hh = Vc_pool.recv_update pool ~trace:1 h in
    refs.(1) <- Vclock.tick_merge refs.(1) refs.(0) ~trace:1;
    if Vc_pool.to_array pool hh <> Vclock.to_array refs.(1) then
      Alcotest.failf "receive diverged at own=%d" (Vc_pool.get pool ~trace:0 ~entry:0)
  done;
  (* snapshots written before the flag flipped must still decode *)
  List.iter
    (fun (h, expect) ->
      if Vc_pool.to_array pool h <> expect then
        Alcotest.fail "pre-boundary snapshot no longer decodes")
    !early;
  check "crossed the lane limit" true (Vc_pool.get pool ~trace:0 ~entry:0 >= 32_768)

let () =
  Alcotest.run "vc_pool"
    [
      ( "snapshots",
        [
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest leq_equal_prop;
          QCheck_alcotest.to_alcotest merge_prop;
          QCheck_alcotest.to_alcotest tick_merge_prop;
          Alcotest.test_case "boundary shapes" `Quick boundary_cases;
          Alcotest.test_case "fallback threshold" `Quick fallback_threshold;
        ] );
      ( "evolution",
        [
          QCheck_alcotest.to_alcotest evolution_prop;
          Alcotest.test_case "long schedules" `Quick evolution_long;
          Alcotest.test_case "15-bit lane boundary" `Quick wide_boundary;
        ] );
    ]
