(* Pattern language: lexer/parser, pretty-printer round trips, compilation
   to the constraint net, and the compound-event relations. *)

open Ocep_base
module Ast = Ocep_pattern.Ast
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Compound = Ocep_pattern.Compound
module Build = Testutil.Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let net_of src = Compile.compile (Parser.parse src)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_simple () =
  let p = Parser.parse "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  check_int "two decls" 2 (List.length p.Ast.decls);
  match p.Ast.pattern with
  | Ast.Op (Ast.Happens_before, Ast.Class "A", Ast.Class "B") -> ()
  | _ -> Alcotest.fail "unexpected AST"

let parse_paper_pattern () =
  (* the Section III-D pattern, verbatim modulo ASCII operators *)
  let src =
    "Synch := [$1, Synch_Leader, $2];\n\
     Snapshot := [$2, Take_Snapshot, ''];\n\
     Update := [$2, Make_Update, ''];\n\
     Forward := [$2, Forward_Snapshot, $1];\n\
     Snapshot $Diff;\n\
     Update $Write;\n\
     pattern := (Synch -> $Diff) && ($Diff -> $Write) && ($Write -> Forward);"
  in
  let p = Parser.parse src in
  check_int "six decls" 6 (List.length p.Ast.decls);
  let net = Compile.compile p in
  check_int "four leaves" 4 (Compile.size net);
  (* exactly one terminating leaf: Forward *)
  let terms =
    Array.to_list net.Compile.terminating
    |> List.mapi (fun i t -> (i, t))
    |> List.filter snd |> List.map fst
  in
  check_int "one terminating leaf" 1 (List.length terms);
  check "terminating is Forward" true
    (net.Compile.leaves.(List.hd terms).Compile.cls.Ast.cname = "Forward")

let parse_operators () =
  List.iter
    (fun (src, expected) ->
      match (Parser.parse_expr src, expected) with
      | Ast.Op (op, _, _), e when op = e -> ()
      | _ -> Alcotest.fail ("operator parse failed for " ^ src))
    [
      ("A -> B", Ast.Happens_before);
      ("A || B", Ast.Concurrent_with);
      ("A <> B", Ast.Partner);
      ("A ~> B", Ast.Limited_hb);
      ("A => B", Ast.Strong_precedes);
      ("A <-> B", Ast.Entangled);
    ]

let parse_attrs () =
  let p = Parser.parse "K := ['exact text', Some_Type, $v]; pattern := K;" in
  match p.Ast.decls with
  | [ Ast.Class_decl { proc = Ast.Exact "exact text"; typ = Ast.Exact "Some_Type"; text = Ast.Var "v"; _ } ] -> ()
  | _ -> Alcotest.fail "attribute parse failed"

let parse_comments_and_whitespace () =
  let p = Parser.parse "# comment line\nA := [_, A, _];   \n\n pattern := A; # trailing" in
  check_int "one decl" 1 (List.length p.Ast.decls)

let parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ src)
  in
  expect_error "pattern := A -> B;";  (* undefined classes *)
  expect_error "A := [_, A, _];";  (* no pattern *)
  expect_error "A := [_, A, _]; pattern := A -> $X;";  (* undeclared event var *)
  expect_error "A := [_, A]; pattern := A;";  (* wrong arity *)
  expect_error "A := [_, A, _]; A := [_, A, _]; pattern := A;";  (* duplicate class *)
  expect_error "A := [_, A, _]; pattern := A;; pattern := A;";  (* stray token *)
  expect_error "A := [_, A, _]; pattern := A -> ;";  (* missing operand *)
  expect_error "A := [_, 'unterminated, _]; pattern := A;"

let lexer_edge_cases () =
  (* <-> at end of input, <> vs <->, _ as part of identifiers *)
  (match Parser.parse_expr "A <-> B" with
  | Ast.Op (Ast.Entangled, _, _) -> ()
  | _ -> Alcotest.fail "expected <->"
  | exception _ -> Alcotest.fail "lex failed");
  (match Parser.parse_expr "A <> B" with
  | Ast.Op (Ast.Partner, _, _) -> ()
  | _ -> Alcotest.fail "expected <>");
  let p = Parser.parse "My_Class_1 := [_, Some_Type_2, _]; pattern := My_Class_1;" in
  (match p.Ast.decls with
  | [ Ast.Class_decl { cname = "My_Class_1"; _ } ] -> ()
  | _ -> Alcotest.fail "underscored identifiers");
  (* a lone < is an error *)
  (match Parser.parse "A := [_, A, _]; pattern := A < A;" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected lex error for <");
  (* comment ending at EOF without newline *)
  let p2 = Parser.parse "A := [_, A, _]; pattern := A; # trailing comment" in
  Alcotest.(check int) "decl parsed" 1 (List.length p2.Ast.decls)

let deadlock_cycle_sizes () =
  List.iter
    (fun k ->
      let net = net_of (Ocep_workloads.Patterns.deadlock_cycle k) in
      check_int (Printf.sprintf "cycle %d leaves" k) k (Compile.size net);
      (* every pair constrained to pure concurrency *)
      let pairs = ref 0 in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          match net.Compile.cons.(i).(j) with
          | Some { Compile.before = false; after = false; concurrent = true } -> incr pairs
          | _ -> ()
        done
      done;
      check_int "all pairs concurrent" (k * (k - 1) / 2) !pairs;
      (* all leaves terminating *)
      check "all terminating" true (Array.for_all (fun b -> b) net.Compile.terminating))
    [ 2; 3; 4; 6 ];
  (match Ocep_workloads.Patterns.deadlock_cycle 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle length 1 rejected")

let pp_roundtrip () =
  List.iter
    (fun src ->
      let p1 = Parser.parse src in
      let printed = Format.asprintf "%a" Ast.pp p1 in
      let p2 = Parser.parse printed in
      if not (Ast.equal p1 p2) then
        Alcotest.failf "round trip failed:@.%s@.vs@.%s" src printed)
    [
      "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;";
      "A := [$p, A, $t]; B := [$p, B, 'x']; pattern := A || B && A -> B;";
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) || (C -> D);";
      "S := [_, S, _]; R := [_, R, _]; pattern := S <> R;";
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) => (C -> D) && (A -> B) <-> (C -> D);";
      "A := [_, A, _]; B := [_, B, _]; A $x; pattern := $x -> B && $x ~> B;";
      Ocep_workloads.Patterns.ordering_bug;
      Ocep_workloads.Patterns.message_race;
      Ocep_workloads.Patterns.deadlock_cycle 4;
    ]

let random_patterns_compile =
  QCheck.Test.make ~name:"random generated patterns parse and compile" ~count:200
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 77) in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 3) prng in
      match Compile.compile (Parser.parse src) with
      | _ -> true
      | exception Compile.Compile_error _ -> true (* contradictory ops are fine *)
      | exception Parser.Parse_error e -> QCheck.Test.fail_reportf "parse error %s on:@.%s" e src)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile_fresh_leaves_per_occurrence () =
  (* two bare uses of A are distinct leaves; event variables share *)
  let net = net_of "A := [_, A, _]; B := [_, B, _]; C := [_, C, _];\npattern := A -> B && A -> C;" in
  check_int "four leaves" 4 (Compile.size net);
  let net2 =
    net_of "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a;\npattern := $a -> B && $a -> C;"
  in
  check_int "three leaves with event var" 3 (Compile.size net2)

let compile_constraints () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  (match net.Compile.cons.(0).(1) with
  | Some { Compile.before = true; after = false; concurrent = false } -> ()
  | _ -> Alcotest.fail "wrong A->B constraint");
  (match net.Compile.cons.(1).(0) with
  | Some { Compile.before = false; after = true; concurrent = false } -> ()
  | _ -> Alcotest.fail "flip not recorded");
  check "terminating" true
    (net.Compile.terminating.(1) && not (net.Compile.terminating.(0)))

let compile_concurrent_terminating () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
  check "both terminating" true (net.Compile.terminating.(0) && net.Compile.terminating.(1))

let compile_compound_weak_precedence () =
  (* (A -> B) -> (C -> D): cross pairs restricted to {before, concurrent},
     plus an existential forward pair *)
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) -> (C -> D);"
  in
  check_int "one existential" 1 (List.length net.Compile.exists_before);
  (match net.Compile.cons.(0).(2) with
  | Some { Compile.before = true; after = false; concurrent = true } -> ()
  | _ -> Alcotest.fail "cross constraint wrong");
  (* inner constraints stay exact *)
  match net.Compile.cons.(0).(1) with
  | Some { Compile.before = true; after = false; concurrent = false } -> ()
  | _ -> Alcotest.fail "inner constraint wrong"

let compile_compound_concurrency_is_pairwise () =
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) || (C -> D);"
  in
  check "all cross pairs concurrent" true
    (List.for_all
       (fun (i, j) ->
         match net.Compile.cons.(i).(j) with
         | Some { Compile.before = false; after = false; concurrent = true } -> true
         | _ -> false)
       [ (0, 2); (0, 3); (1, 2); (1, 3) ])

let compile_strong_precedence_compound () =
  (* (A -> B) => (C -> D): every cross pair strictly forward, no existential *)
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) => (C -> D);"
  in
  check_int "no existential" 0 (List.length net.Compile.exists_before);
  check "all cross pairs strictly before" true
    (List.for_all
       (fun (i, j) ->
         match net.Compile.cons.(i).(j) with
         | Some { Compile.before = true; after = false; concurrent = false } -> true
         | _ -> false)
       [ (0, 2); (0, 3); (1, 2); (1, 3) ])

let compile_entangled_compound () =
  (* (A -> B) <-> (C -> D): existential pairs in both directions *)
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) <-> (C -> D);"
  in
  check_int "two existentials" 2 (List.length net.Compile.exists_before)

let compile_unsatisfiable () =
  match net_of "A := [_, A, _]; B := [_, B, _]; A $a; B $b;\npattern := $a -> $b && $b -> $a;" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected unsatisfiable"

let compile_self_constraint () =
  match net_of "A := [_, A, _]; A $x; pattern := $x -> $x;" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected self-constraint error"

let compile_partner_requires_primitive () =
  match
    net_of "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; pattern := (A -> B) <> C;"
  with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected partner arity error"

let compile_var_fields () =
  let net = net_of "A := [$p, A, $t]; B := [$p, B, _]; pattern := A -> B;" in
  check_int "two variables" 2 (List.length net.Compile.var_fields);
  match List.assoc_opt "p" net.Compile.var_fields with
  | Some positions -> check_int "p has two positions" 2 (List.length positions)
  | None -> Alcotest.fail "missing variable p"

let leaf_matches_specs () =
  let net = net_of "A := ['P1', A, 'x']; pattern := A;" in
  let b = Build.create [| "P0"; "P1" |] in
  let good = Build.internal b 1 ~text:"x" "A" in
  let wrong_trace = Build.internal b 0 ~text:"x" "A" in
  let wrong_text = Build.internal b 1 ~text:"y" "A" in
  let wrong_type = Build.internal b 1 ~text:"x" "B" in
  check "good" true (Compile.leaf_matches net 0 good);
  check "wrong trace" false (Compile.leaf_matches net 0 wrong_trace);
  check "wrong text" false (Compile.leaf_matches net 0 wrong_text);
  check "wrong type" false (Compile.leaf_matches net 0 wrong_type)

(* ------------------------------------------------------------------ *)
(* Compound-event relations                                            *)
(* ------------------------------------------------------------------ *)

let compound_scenario () =
  (* two traces; M1 = {a0, b1} crossing M2 = {b0, a1} etc. *)
  let b = Build.create [| "P0"; "P1" |] in
  let a0 = Build.internal b 0 "a0" in
  let m1, _ = Build.send b ~src:0 () in
  let b0recv = Build.recv b ~dst:1 m1 in
  let b1 = Build.internal b 1 "b1" in
  let a1 = Build.internal b 0 "a1" in
  (* strong precedence: every element of [a0] precedes every of [b0recv; b1] *)
  check "strong" true (Compound.strong_precedes [ a0 ] [ b0recv; b1 ]);
  check "weak" true (Compound.weak_precedes [ a0; a1 ] [ b1 ]);
  check "not strong" false (Compound.strong_precedes [ a0; a1 ] [ b1 ]);
  check "overlap" true (Compound.overlaps [ a0; b1 ] [ b1 ]);
  check "disjoint" true (Compound.disjoint [ a0 ] [ b1 ]);
  (* crossing: a0 -> b0recv and ... need an event of B before an event of A:
     b? a1 is concurrent with b1; build explicit cross *)
  let m2, _ = Build.send b ~src:1 () in
  let a2 = Build.recv b ~dst:0 m2 in
  (* A = {a0, a2}, B = {b0recv, b1}: a0 -> b0recv, b1 -> a2 *)
  check "crosses" true (Compound.crosses [ a0; a2 ] [ b0recv; b1 ]);
  check "entangled" true (Compound.entangled [ a0; a2 ] [ b0recv; b1 ]);
  check "classify entangled" true (Compound.classify [ a0; a2 ] [ b0recv; b1 ] = Compound.Entangled);
  check "classify before" true (Compound.classify [ a0 ] [ b0recv ] = Compound.A_before_B);
  check "classify after" true (Compound.classify [ b0recv ] [ a0 ] = Compound.B_before_A)

let compound_concurrent () =
  let b = Build.create [| "P0"; "P1" |] in
  let x = Build.internal b 0 "x" in
  let y = Build.internal b 1 "y" in
  check "concurrent" true (Compound.concurrent [ x ] [ y ]);
  check "classify" true (Compound.classify [ x ] [ y ] = Compound.Concurrent)

let ( ==> ) = QCheck.( ==> )

let compound_exclusive_classification =
  QCheck.Test.make ~name:"classification is total and exclusive" ~count:40 QCheck.small_int
    (fun seed ->
      let prng = Prng.create (seed + 31) in
      let raws = Testutil.Gen.computation ~n_traces:3 ~length:25 prng in
      let _, events = Testutil.ingest_all [| "P0"; "P1"; "P2" |] raws in
      let arr = Array.of_list events in
      Array.length arr >= 4
      ==>
      let pick i = arr.(i mod Array.length arr) in
      let a = [ pick (seed * 3); pick ((seed * 5) + 1) ] in
      let b = [ pick ((seed * 7) + 2); pick ((seed * 11) + 3) ] in
      if Compound.overlaps a b then Compound.classify a b = Compound.Entangled
      else
        let cls = Compound.classify a b in
        let count =
          (if Compound.entangled a b then 1 else 0)
          + (if (not (Compound.entangled a b)) && Compound.weak_precedes a b then 1 else 0)
          + (if (not (Compound.entangled a b)) && (not (Compound.weak_precedes a b)) && Compound.weak_precedes b a then 1 else 0)
          + if Compound.concurrent a b then 1 else 0
        in
        ignore cls;
        count = 1)

(* ------------------------------------------------------------------ *)
(* Parameterized pattern templates                                     *)
(* ------------------------------------------------------------------ *)

let tpl_src =
  "template race($c) {\n\
  \  S1 := [_, Send, $c];\n\
  \  S2 := [_, Send, $c];\n\
  \  pattern := S1 || S2;\n\
   }\n\
   instantiate race(x);\n\
   instantiate race(y);\n\
   instantiate race(x);\n\
   A := [_, A, _];\n\
   B := [_, B, _];\n\
   pattern := A -> B;\n"

let template_expand () =
  let f = Parser.parse_file tpl_src in
  check_int "one template" 1 (List.length f.Ast.templates);
  check_int "three instantiations parsed" 3 (List.length f.Ast.instances);
  let expanded = Compile.expand_file f in
  (* duplicates collapse in first-occurrence order; main comes last *)
  Alcotest.(check (list string))
    "names and order"
    [ "race('x')"; "race('y')"; "main" ]
    (List.map fst expanded);
  (* the binding substitutes the parameter with an exact attribute *)
  match List.assoc "race('x')" expanded with
  | { Ast.decls = Ast.Class_decl c :: _; _ } ->
    check "text bound" true (c.Ast.text = Ast.Exact "x")
  | _ -> Alcotest.fail "expected a class decl first"

let template_instances_share_shape () =
  let nets = Compile.compile_file (Parser.parse_file tpl_src) in
  check_int "three compiled patterns" 3 (List.length nets);
  let tbl = Hashtbl.create 8 in
  let intern s =
    match Hashtbl.find_opt tbl s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tbl in
      Hashtbl.replace tbl s i;
      i
  in
  let inet name = Compile.intern_net (List.assoc name nets) ~intern in
  let ix = inet "race('x')" and iy = inet "race('y')" and im = inet "main" in
  (* instances differ only in their bound attribute: same shape (so the
     engine shares their search plans), different leaf keys *)
  check "instances share shape" true (Compile.shape_key ix = Compile.shape_key iy);
  check "main has its own shape" true (Compile.shape_key ix <> Compile.shape_key im);
  check "bound leaf keys differ" true (Compile.class_key ix 0 <> Compile.class_key iy 0)

let template_errors () =
  (* template sources must go through parse_file *)
  (match Parser.parse tpl_src with
  | _ -> Alcotest.fail "Parser.parse should reject template sources"
  | exception Parser.Parse_error msg ->
    check "redirects to parse_file" true
      (String.length msg > 0
      && (let sub = "parse_file" in
          let rec go i =
            i + String.length sub <= String.length msg
            && (String.sub msg i (String.length sub) = sub || go (i + 1))
          in
          go 0)));
  (* undefined template and arity mismatches are parse-time errors *)
  (match Parser.parse_file "instantiate ghost(x);\n" with
  | _ -> Alcotest.fail "undefined template should not parse"
  | exception Parser.Parse_error _ -> ());
  match
    Parser.parse_file
      "template t($a) { X := [_, T, $a]; pattern := X; }\ninstantiate t(x, y);\n"
  with
  | _ -> Alcotest.fail "arity mismatch should not parse"
  | exception Parser.Parse_error _ -> ()

let plain_file_compat () =
  (* a plain pattern parses as a file with only a main *)
  match Compile.compile_file (Parser.parse_file "A := [_, A, _];\npattern := A;\n") with
  | [ ("main", net) ] -> check_int "one leaf" 1 (Compile.size net)
  | _ -> Alcotest.fail "expected a single main pattern"

let () =
  Alcotest.run "pattern"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick parse_simple;
          Alcotest.test_case "paper pattern" `Quick parse_paper_pattern;
          Alcotest.test_case "operators" `Quick parse_operators;
          Alcotest.test_case "attributes" `Quick parse_attrs;
          Alcotest.test_case "comments" `Quick parse_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick parse_errors;
          Alcotest.test_case "lexer edge cases" `Quick lexer_edge_cases;
          Alcotest.test_case "deadlock cycle sizes" `Quick deadlock_cycle_sizes;
          Alcotest.test_case "pp roundtrip" `Quick pp_roundtrip;
          QCheck_alcotest.to_alcotest random_patterns_compile;
        ] );
      ( "compile",
        [
          Alcotest.test_case "fresh leaves" `Quick compile_fresh_leaves_per_occurrence;
          Alcotest.test_case "constraints" `Quick compile_constraints;
          Alcotest.test_case "concurrent terminating" `Quick compile_concurrent_terminating;
          Alcotest.test_case "compound weak precedence" `Quick compile_compound_weak_precedence;
          Alcotest.test_case "compound concurrency" `Quick compile_compound_concurrency_is_pairwise;
          Alcotest.test_case "strong precedence compound" `Quick compile_strong_precedence_compound;
          Alcotest.test_case "entangled compound" `Quick compile_entangled_compound;
          Alcotest.test_case "unsatisfiable" `Quick compile_unsatisfiable;
          Alcotest.test_case "self constraint" `Quick compile_self_constraint;
          Alcotest.test_case "partner arity" `Quick compile_partner_requires_primitive;
          Alcotest.test_case "var fields" `Quick compile_var_fields;
          Alcotest.test_case "leaf matches" `Quick leaf_matches_specs;
        ] );
      ( "templates",
        [
          Alcotest.test_case "expand + dedup" `Quick template_expand;
          Alcotest.test_case "instances share shape" `Quick template_instances_share_shape;
          Alcotest.test_case "errors" `Quick template_errors;
          Alcotest.test_case "plain files still parse" `Quick plain_file_compat;
        ] );
      ( "compound",
        [
          Alcotest.test_case "scenario" `Quick compound_scenario;
          Alcotest.test_case "concurrent" `Quick compound_concurrent;
          QCheck_alcotest.to_alcotest compound_exclusive_classification;
        ] );
    ]
