(* The pinned-search fan-out: Search_pool semantics, engine config
   validation, and the determinism contract — an engine running its
   pinned searches on 4 workers must be observably identical (matches,
   coverage, reports) to the sequential engine; history GC must never
   drop an event a later search needs. *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Search_pool = Ocep.Search_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let net_of src = Compile.compile (Parser.parse src)

(* ------------------------------------------------------------------ *)
(* Search_pool                                                         *)
(* ------------------------------------------------------------------ *)

let with_pool ~workers f =
  let pool = Search_pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Search_pool.shutdown pool) (fun () -> f pool)

let pool_results_in_order () =
  with_pool ~workers:4 (fun pool ->
      let r = Search_pool.run pool ~n:100 (fun i -> i * i) in
      check_int "length" 100 (Array.length r);
      Array.iteri (fun i x -> check_int "in order" (i * i) x) r)

let pool_runs_every_task_once () =
  with_pool ~workers:3 (fun pool ->
      let hits = Array.make 64 0 in
      let m = Mutex.create () in
      let _ =
        Search_pool.run pool ~n:64 (fun i ->
            Mutex.lock m;
            hits.(i) <- hits.(i) + 1;
            Mutex.unlock m)
      in
      Array.iteri (fun i c -> check_int (Printf.sprintf "task %d once" i) 1 c) hits)

let pool_reusable_across_batches () =
  with_pool ~workers:4 (fun pool ->
      for batch = 1 to 50 do
        let r = Search_pool.run pool ~n:batch (fun i -> i + batch) in
        check_int "batch length" batch (Array.length r);
        Array.iteri (fun i x -> check_int "batch value" (i + batch) x) r
      done)

let pool_single_worker_and_empty_batch () =
  with_pool ~workers:1 (fun pool ->
      check_int "workers floor" 1 (Search_pool.workers pool);
      check_int "empty batch" 0 (Array.length (Search_pool.run pool ~n:0 (fun i -> i)));
      let r = Search_pool.run pool ~n:5 (fun i -> 2 * i) in
      check_int "sequential degenerate" 8 r.(4))

exception Boom

let pool_propagates_exception () =
  with_pool ~workers:4 (fun pool ->
      (match Search_pool.run pool ~n:16 (fun i -> if i = 7 then raise Boom else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom -> ());
      (* the barrier was not abandoned: the pool still works *)
      let r = Search_pool.run pool ~n:4 (fun i -> i) in
      check_int "pool survives a failed batch" 3 r.(3))

let pool_shutdown_idempotent () =
  let pool = Search_pool.create ~workers:3 () in
  Search_pool.shutdown pool;
  Search_pool.shutdown pool;
  match Search_pool.run pool ~n:1 (fun i -> i) with
  | _ -> Alcotest.fail "run after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Engine config validation                                            *)
(* ------------------------------------------------------------------ *)

let rejects config =
  let poet = Poet.create ~trace_names:[| "P0"; "P1" |] () in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  match Engine.create ~config ~net ~poet () with
  | _ -> false
  | exception Invalid_argument _ -> true

let config_validation () =
  let d = Engine.default_config in
  check "gc_every = Some 0" true (rejects { d with Engine.gc_every = Some 0 });
  check "gc_every negative" true (rejects { d with Engine.gc_every = Some (-3) });
  check "node_budget = Some 0" true (rejects { d with Engine.node_budget = Some 0 });
  check "max_history = Some 0" true (rejects { d with Engine.max_history_per_trace = Some 0 });
  check "report_cap negative" true (rejects { d with Engine.report_cap = -1 });
  check "parallelism negative" true (rejects { d with Engine.parallelism = -2 });
  check "default accepted" false (rejects d);
  check "parallelism 0 = auto accepted" false (rejects { d with Engine.parallelism = 0 })

let parallelism_resolution () =
  let poet = Poet.create ~trace_names:[| "P0" |] () in
  let net = net_of "A := [_, A, _]; pattern := A;" in
  let engine =
    Engine.create ~config:{ Engine.default_config with Engine.parallelism = 0 } ~net ~poet ()
  in
  check "auto resolves to >= 1" true (Engine.parallelism engine >= 1);
  Engine.shutdown engine;
  Engine.shutdown engine (* idempotent, and a no-op when no pool was spawned *)

(* ------------------------------------------------------------------ *)
(* Parallel fan-out == sequential engine                               *)
(* ------------------------------------------------------------------ *)

(* Observable state of an engine after a run, in a directly comparable
   shape: reports are reduced to (seq, fresh slots, per-leaf (trace,
   index)) so the comparison does not rely on deep event equality. *)
let observe engine =
  let reports =
    List.map
      (fun (r : Subset.report) ->
        ( r.seq,
          r.fresh,
          Array.to_list (Array.map (fun (e : Event.t) -> (e.trace, e.index)) r.events) ))
      (Engine.reports engine)
  in
  ( Engine.matches_found engine,
    Engine.covered_slots engine,
    Engine.seen_slots engine,
    Engine.terminating_arrivals engine,
    reports )

let run_config ~config ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      observe engine)

let parallel_equals_sequential =
  QCheck.Test.make ~name:"parallelism=4 is observably identical to parallelism=1" ~count:60
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 90210) in
      let n_traces = 2 + Prng.int prng 3 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:(20 + Prng.int prng 30) prng in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 2) prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        (* cut-over thresholds zeroed: these generated runs are small, and
           the point is to exercise the pool path, not the inline one *)
        let cfg p =
          { Engine.default_config with Engine.parallelism = p; cutover_batch = 0; cutover_work = 0 }
        in
        let seq = run_config ~config:(cfg 1) ~names ~net raws in
        let par = run_config ~config:(cfg 4) ~names ~net raws in
        if seq <> par then
          QCheck.Test.fail_reportf "parallel diverges from sequential on pattern:@.%s" src
        else true)

(* same determinism when searches are budget-capped (Aborted outcomes) *)
let parallel_equals_sequential_budget =
  QCheck.Test.make ~name:"parallel = sequential under a node budget" ~count:40 QCheck.small_int
    (fun seed ->
      let prng = Prng.create (seed + 1337) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:40 prng in
      let src = Testutil.Gen.pattern ~n_classes:3 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let cfg p =
          {
            Engine.default_config with
            Engine.parallelism = p;
            node_budget = Some 50;
            cutover_batch = 0;
            cutover_work = 0;
          }
        in
        run_config ~config:(cfg 1) ~names ~net raws = run_config ~config:(cfg 4) ~names ~net raws)

let parallel_fig3 () =
  (* the Fig. 3 scenario through a 2-worker engine: same subset *)
  let names = [| "P0"; "P1"; "P2" |] in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let run parallelism =
    let poet = Poet.create ~trace_names:names () in
    let engine =
      Engine.create ~config:{ Engine.default_config with Engine.parallelism } ~net ~poet ()
    in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown engine)
      (fun () ->
        let msg = ref 0 in
        let ingest raw = ignore (Poet.ingest poet raw) in
        let internal tr ty =
          ingest { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal }
        in
        let send tr =
          incr msg;
          ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = !msg } };
          !msg
        in
        let recv tr m =
          ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = m } }
        in
        internal 1 "A";
        let m1 = send 1 in
        for _ = 1 to 20 do
          internal 0 "N"
        done;
        internal 0 "A";
        internal 0 "A";
        let m0 = send 0 in
        recv 2 m0;
        recv 2 m1;
        internal 2 "B";
        observe engine)
  in
  check "fig3 identical at 2 workers" true (run 1 = run 2);
  check "fig3 identical at auto workers" true (run 1 = run 0)

(* ------------------------------------------------------------------ *)
(* GC regression: gc never drops an event a later search needs         *)
(* ------------------------------------------------------------------ *)

(* Aggressive GC (every event) must leave every observable of the run —
   matches found, coverage, the report set — untouched, with the
   production config (pruning on): whenever a later (anchored or
   pinned) search would have needed a dropped event, some observable
   diverges. Complements test_engine's oracle-coverage property, which
   runs with pruning off. *)
let gc_equals_no_gc =
  QCheck.Test.make ~name:"gc on every event changes no observable (regression)" ~count:60
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 777) in
      let n_traces = 2 + Prng.int prng 3 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:(30 + Prng.int prng 30) prng in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 2) prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let cfg gc_every = { Engine.default_config with Engine.gc_every } in
        run_config ~config:(cfg None) ~names ~net raws
        = run_config ~config:(cfg (Some 1)) ~names ~net raws)

let () =
  Alcotest.run "parallel"
    [
      ( "search_pool",
        [
          Alcotest.test_case "results in order" `Quick pool_results_in_order;
          Alcotest.test_case "every task exactly once" `Quick pool_runs_every_task_once;
          Alcotest.test_case "reusable across batches" `Quick pool_reusable_across_batches;
          Alcotest.test_case "single worker / empty batch" `Quick pool_single_worker_and_empty_batch;
          Alcotest.test_case "exception propagation" `Quick pool_propagates_exception;
          Alcotest.test_case "shutdown idempotent" `Quick pool_shutdown_idempotent;
        ] );
      ( "config",
        [
          Alcotest.test_case "invalid configs rejected" `Quick config_validation;
          Alcotest.test_case "parallelism resolution" `Quick parallelism_resolution;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 parallel" `Quick parallel_fig3;
          QCheck_alcotest.to_alcotest parallel_equals_sequential;
          QCheck_alcotest.to_alcotest parallel_equals_sequential_budget;
        ] );
      ("gc", [ QCheck_alcotest.to_alcotest gc_equals_no_gc ]);
    ]
