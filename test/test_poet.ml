(* POET substrate: timestamp correctness against the reachability oracle,
   dump/reload round trips, re-linearization, partner lookup, and the
   subscription interface. *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Linearize = Ocep_poet.Linearize
module Build = Testutil.Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names n = Array.init n (fun i -> "P" ^ string_of_int i)

let timestamps_match_oracle =
  QCheck.Test.make ~name:"vector timestamps encode exactly reachability" ~count:50
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 1) in
      let n_traces = 2 + Prng.int prng 4 in
      let raws = Testutil.Gen.computation ~n_traces ~length:40 prng in
      let _, events = Testutil.ingest_all (names n_traces) raws in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Event.equal a b || Event.hb a b = Testutil.hb_oracle events a b)
            events)
        events)

let indices_sequential () =
  let b = Build.create (names 2) in
  let e1 = Build.internal b 0 "A" in
  let e2 = Build.internal b 0 "B" in
  let f1 = Build.internal b 1 "A" in
  check_int "first" 1 e1.Event.index;
  check_int "second" 2 e2.Event.index;
  check_int "other trace restarts" 1 f1.Event.index

let receive_unknown_message () =
  let poet = Poet.create ~trace_names:(names 2) () in
  Alcotest.check_raises "unknown msg" (Failure "Poet.ingest: receive of unknown message 99")
    (fun () ->
      ignore
        (Poet.ingest poet
           { Event.r_trace = 0; r_etype = "R"; r_text = ""; r_kind = Event.Receive { msg = 99 } }))

let trace_out_of_range () =
  let poet = Poet.create ~trace_names:(names 2) () in
  Alcotest.check_raises "bad trace" (Failure "Poet.ingest: trace 7 out of range") (fun () ->
      ignore
        (Poet.ingest poet { Event.r_trace = 7; r_etype = "X"; r_text = ""; r_kind = Event.Internal }))

let subscription_order () =
  let poet = Poet.create ~trace_names:(names 2) () in
  let got = ref [] in
  Poet.subscribe poet (fun ev -> got := ev.Event.etype :: !got);
  List.iter
    (fun ty ->
      ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = ty; r_text = ""; r_kind = Event.Internal }))
    [ "A"; "B"; "C" ];
  check "in order" true (List.rev !got = [ "A"; "B"; "C" ])

let partner_lookup () =
  let b = Build.create (names 2) in
  let s, r = Build.message b ~src:0 ~dst:1 in
  let i = Build.internal b 0 "X" in
  let poet = Build.poet b in
  check "send partner" true (match Poet.find_partner poet s with Some e -> Event.equal e r | None -> false);
  check "recv partner" true (match Poet.find_partner poet r with Some e -> Event.equal e s | None -> false);
  check "internal none" true (Poet.find_partner poet i = None)

let retain_required () =
  let poet = Poet.create ~retain:false ~trace_names:(names 1) () in
  Alcotest.check_raises "events_on requires retain"
    (Failure "Poet.events_on: store was created with retain:false") (fun () ->
      ignore (Poet.events_on poet 0))

let dump_reload_roundtrip () =
  let prng = Prng.create 99 in
  let raws = Testutil.Gen.computation ~n_traces:3 ~length:60 prng in
  let file = Filename.temp_file "poet" ".dump" in
  let oc = open_out file in
  Poet.dump_header ~trace_names:(names 3) oc;
  List.iter (Poet.dump_raw oc) raws;
  close_out oc;
  let ic = open_in file in
  let loaded_names, loaded = Poet.load ic in
  close_in ic;
  Sys.remove file;
  check "names" true (loaded_names = names 3);
  check "events" true (loaded = raws)

let dump_reload_same_timestamps () =
  let prng = Prng.create 123 in
  let raws = Testutil.Gen.computation ~n_traces:3 ~length:50 prng in
  let _, ev1 = Testutil.ingest_all (names 3) raws in
  let file = Filename.temp_file "poet" ".dump" in
  let oc = open_out file in
  Poet.dump_header ~trace_names:(names 3) oc;
  List.iter (Poet.dump_raw oc) raws;
  close_out oc;
  let ic = open_in file in
  let loaded_names, loaded = Poet.load ic in
  close_in ic;
  Sys.remove file;
  let _, ev2 = Testutil.ingest_all loaded_names loaded in
  check "same timestamps" true
    (List.for_all2 (fun (a : Event.t) (b : Event.t) -> Vclock.equal a.vc b.vc) ev1 ev2)

let dump_escaping () =
  (* attribute values with spaces, quotes and newlines survive the dump *)
  let raws =
    [
      { Event.r_trace = 0; r_etype = "weird type"; r_text = "a \"quoted\" text"; r_kind = Event.Internal };
      { Event.r_trace = 0; r_etype = "nl"; r_text = "line1\nline2"; r_kind = Event.Internal };
    ]
  in
  let file = Filename.temp_file "poet" ".dump" in
  let oc = open_out file in
  Poet.dump_header ~trace_names:[| "trace zero" |] oc;
  List.iter (Poet.dump_raw oc) raws;
  close_out oc;
  let ic = open_in file in
  let loaded_names, loaded = Poet.load ic in
  close_in ic;
  Sys.remove file;
  check "names escaped" true (loaded_names = [| "trace zero" |]);
  check "events escaped" true (loaded = raws)

let load_rejects_garbage () =
  let file = Filename.temp_file "poet" ".dump" in
  let oc = open_out file in
  output_string oc "not a dump\n";
  close_out oc;
  let ic = open_in file in
  (try
     ignore (Poet.load ic);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  close_in ic;
  Sys.remove file

let shuffle_is_valid_linearization =
  QCheck.Test.make ~name:"shuffle produces a valid linearization with the same timestamps"
    ~count:40 QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 5) in
      let raws = Testutil.Gen.computation ~n_traces:3 ~length:40 prng in
      let shuffled = Linearize.shuffle ~seed:(seed * 3 + 1) raws in
      Linearize.is_linearization shuffled
      && List.length shuffled = List.length raws
      &&
      (* same per-trace subsequences *)
      let per_trace l t = List.filter (fun (r : Event.raw) -> r.r_trace = t) l in
      List.for_all (fun t -> per_trace raws t = per_trace shuffled t) [ 0; 1; 2 ]
      &&
      (* identical vector timestamps for corresponding events *)
      let _, ev1 = Testutil.ingest_all (names 3) raws in
      let _, ev2 = Testutil.ingest_all (names 3) shuffled in
      let key (e : Event.t) = (e.trace, e.index) in
      let sorted l = List.sort (fun a b -> compare (key a) (key b)) l in
      List.for_all2
        (fun (a : Event.t) (b : Event.t) -> key a = key b && Vclock.equal a.vc b.vc)
        (sorted ev1) (sorted ev2))

let is_linearization_detects_violation () =
  let bad =
    [
      { Event.r_trace = 0; r_etype = "R"; r_text = ""; r_kind = Event.Receive { msg = 1 } };
      { Event.r_trace = 1; r_etype = "S"; r_text = ""; r_kind = Event.Send { msg = 1 } };
    ]
  in
  check "detected" false (Linearize.is_linearization bad)

(* ------------------------------------------------------------------ *)
(* Dense / spill boundary for per-message-id state                     *)
(* ------------------------------------------------------------------ *)

(* Message ids below [dense_capacity] live in flat arrays; ids at or
   above it (and negative ids) spill to hashtables. The two stores must
   be indistinguishable: clock propagation and partner lookup work the
   same on either side of the boundary, including both in one run. *)

let send poet tr msg =
  ignore (Poet.ingest poet { Event.r_trace = tr; r_etype = "S"; r_text = ""; r_kind = Event.Send { msg } })

let recv poet tr msg =
  Poet.ingest poet { Event.r_trace = tr; r_etype = "R"; r_text = ""; r_kind = Event.Receive { msg } }

let internal poet tr ty =
  Poet.ingest poet { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal }

let spill_boundary_clock_propagation () =
  List.iter
    (fun msg ->
      let poet = Poet.create ~partner_index:true ~trace_names:(names 2) () in
      let a = internal poet 0 "A" in
      send poet 0 msg;
      let r = recv poet 1 msg in
      let b = internal poet 1 "B" in
      let label = Printf.sprintf "msg id %d" msg in
      check (label ^ ": A hb recv") true (Event.hb a r);
      check (label ^ ": A hb B across the message") true (Event.hb a b))
    [
      Poet.dense_capacity - 1;  (* last dense id *)
      Poet.dense_capacity;  (* first spilled id *)
      Poet.dense_capacity + 5;
      -3;  (* negative ids always spill *)
    ]

let spill_boundary_partner_lookup () =
  let poet = Poet.create ~partner_index:true ~trace_names:(names 2) () in
  (* one dense and two spilled messages interleaved in a single run *)
  let pairs =
    List.map
      (fun msg ->
        send poet 0 msg;
        let r = recv poet 1 msg in
        let s = match Poet.find_partner poet r with Some s -> s | None -> Alcotest.fail "no send partner" in
        (msg, s, r))
      [ Poet.dense_capacity - 1; Poet.dense_capacity; -1 ]
  in
  List.iter
    (fun (msg, s, r) ->
      let label = Printf.sprintf "msg id %d" msg in
      check (label ^ ": send -> recv") true
        (match Poet.find_partner poet s with Some e -> Event.equal e r | None -> false);
      check (label ^ ": recv -> send") true
        (match Poet.find_partner poet r with Some e -> Event.equal e s | None -> false))
    pairs

let spill_boundary_unknown_still_fails () =
  let poet = Poet.create ~trace_names:(names 2) () in
  send poet 0 Poet.dense_capacity;
  (* a different spilled id is still unknown *)
  Alcotest.check_raises "unknown spilled msg"
    (Failure
       (Printf.sprintf "Poet.ingest: receive of unknown message %d" (Poet.dense_capacity + 1)))
    (fun () -> ignore (recv poet 1 (Poet.dense_capacity + 1)))

(* ------------------------------------------------------------------ *)
(* Diagram                                                             *)
(* ------------------------------------------------------------------ *)

let diagram_renders () =
  let b = Build.create [| "P0"; "P1" |] in
  let a = Build.internal b 0 "A" in
  let _s, _r = Build.message b ~src:0 ~dst:1 in
  let bb = Build.internal b 1 "B" in
  let out =
    Ocep_poet.Diagram.render ~highlight:[ a; bb ] ~trace_names:[| "P0"; "P1" |]
      (Build.events b)
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | l0 :: l1 :: _ ->
    Alcotest.(check string) "row P0" "P0 |#1  " l0;
    Alcotest.(check string) "row P1" "P1 |  1#" l1
  | _ -> Alcotest.fail "expected at least two lines");
  check "legend mentions message" true
    (let rec contains i =
       i + 7 <= String.length out && (String.sub out i 7 = "1=msg#1" || contains (i + 1))
     in
     contains 0);
  check "legend lists highlights" true
    (let rec contains i =
       i + 11 <= String.length out && (String.sub out i 11 = "highlighted" || contains (i + 1))
     in
     contains 0)

let diagram_truncates () =
  let b = Build.create [| "P0" |] in
  for _ = 1 to 100 do
    ignore (Build.internal b 0 "E")
  done;
  let out = Ocep_poet.Diagram.render ~max_events:10 ~trace_names:[| "P0" |] (Build.events b) in
  let first_line = List.hd (String.split_on_char '\n' out) in
  Alcotest.(check int) "width capped" (String.length "P0 |" + 10) (String.length first_line)

let () =
  Alcotest.run "poet"
    [
      ( "timestamps",
        [
          QCheck_alcotest.to_alcotest timestamps_match_oracle;
          Alcotest.test_case "indices sequential" `Quick indices_sequential;
          Alcotest.test_case "receive unknown" `Quick receive_unknown_message;
          Alcotest.test_case "trace out of range" `Quick trace_out_of_range;
        ] );
      ( "clients",
        [
          Alcotest.test_case "subscription order" `Quick subscription_order;
          Alcotest.test_case "partner lookup" `Quick partner_lookup;
          Alcotest.test_case "retain required" `Quick retain_required;
        ] );
      ( "dump",
        [
          Alcotest.test_case "roundtrip" `Quick dump_reload_roundtrip;
          Alcotest.test_case "same timestamps" `Quick dump_reload_same_timestamps;
          Alcotest.test_case "escaping" `Quick dump_escaping;
          Alcotest.test_case "rejects garbage" `Quick load_rejects_garbage;
        ] );
      ( "dense spill boundary",
        [
          Alcotest.test_case "clock propagation" `Quick spill_boundary_clock_propagation;
          Alcotest.test_case "partner lookup" `Quick spill_boundary_partner_lookup;
          Alcotest.test_case "unknown spilled id" `Quick spill_boundary_unknown_still_fails;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "renders" `Quick diagram_renders;
          Alcotest.test_case "truncates" `Quick diagram_truncates;
        ] );
      ( "linearize",
        [
          QCheck_alcotest.to_alcotest shuffle_is_valid_linearization;
          Alcotest.test_case "violation detected" `Quick is_linearization_detects_violation;
        ] );
    ]
