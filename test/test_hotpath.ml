(* The hot-path overhaul's two behavioral guarantees: (1) the interned
   integer-only fast path classifies and matches exactly like the
   string-keyed pattern semantics, on all four case-study workloads;
   (2) the pinned-search pre-filter skips real searches without changing
   any observable (coverage, reports, match counts), and its skip count
   is exported as ocep_pinned_skipped_total. *)

open Ocep_base
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Oracle = Ocep_baselines.Oracle
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let net_of src = Compile.compile (Parser.parse src)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Observable engine state in a directly comparable shape (reports
   reduced to (seq, fresh, per-leaf (trace, index))). *)
let observe engine =
  let reports =
    List.map
      (fun (r : Subset.report) ->
        ( r.seq,
          r.fresh,
          Array.to_list (Array.map (fun (e : Event.t) -> (e.trace, e.index)) r.events) ))
      (Engine.reports engine)
  in
  ( Engine.matches_found engine,
    Engine.covered_slots engine,
    Engine.seen_slots engine,
    Engine.terminating_arrivals engine,
    reports )

(* ------------------------------------------------------------------ *)
(* Interned fast path == string-keyed semantics                        *)
(* ------------------------------------------------------------------ *)

(* On every event of a case-study run: each leaf's interned class-match
   must agree with the string-keyed one, the engine's history must hold
   exactly the class-matching (event, leaf) pairs (so the precomputed
   dispatch tables miss no candidate), and every report must re-verify
   against the string-keyed oracle. *)
let interned_equals_string_reference =
  QCheck.Test.make ~name:"interned engine = string-keyed reference on the 4 workloads" ~count:6
    QCheck.small_int (fun seed ->
      List.for_all
        (fun case ->
          (* ordering (Random_walk) needs cycle_len + 1 = 5 traces *)
          let w = Cases.make case ~traces:5 ~seed:(seed + 1) ~max_events:300 in
          let names = Sim.trace_names w.Workload.sim_config in
          let poet = Poet.create ~trace_names:names () in
          let net = net_of w.Workload.pattern in
          let config =
            { Engine.default_config with Engine.pruning = false; record_latency = false }
          in
          let engine = Engine.create ~config ~net ~poet () in
          Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
          let inet = Engine.interned_net engine in
          let k = Compile.size net in
          let mismatches = ref 0 and class_adds = ref 0 in
          (* the shared store holds one entry per matched *class*, not per
             matched leaf: leaves with equal class keys share storage *)
          let seen_keys = Hashtbl.create 8 in
          Poet.subscribe poet (fun ev ->
              Hashtbl.reset seen_keys;
              for i = 0 to k - 1 do
                let s = Compile.leaf_matches net i ev in
                if s <> Compile.leaf_matches_i inet i ev then incr mismatches;
                if s then begin
                  let key = Compile.class_key inet i in
                  if not (Hashtbl.mem seen_keys key) then begin
                    Hashtbl.replace seen_keys key ();
                    incr class_adds
                  end
                end
              done);
          ignore
            (Sim.run w.Workload.sim_config
               ~sink:(fun raw -> ignore (Poet.ingest poet raw))
               ~bodies:w.Workload.bodies);
          if !mismatches > 0 then
            QCheck.Test.fail_reportf "%d interned/string classification mismatches on %s"
              !mismatches case
          else if Engine.history_entries engine <> !class_adds then
            QCheck.Test.fail_reportf "history holds %d entries, classification says %d (%s)"
              (Engine.history_entries engine) !class_adds case
          else if
            not
              (List.for_all
                 (fun (r : Subset.report) -> Oracle.is_match ~net ~events:[] r.events)
                 (Engine.reports engine))
          then QCheck.Test.fail_reportf "a report fails the string-keyed oracle on %s" case
          else true)
        [ "deadlock"; "races"; "atomicity"; "ordering" ])

(* ------------------------------------------------------------------ *)
(* Pin filtering changes no observable                                 *)
(* ------------------------------------------------------------------ *)

let run_config ~config ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      (observe engine, Engine.pinned_skipped engine))

(* Without a node budget the filter is exact (DESIGN.md §4b): identical
   coverage, reports and match counts, never a dropped subset slot. *)
let filtering_changes_no_observable =
  QCheck.Test.make ~name:"pin filtering drops no slot and changes no observable" ~count:80
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 4242) in
      let n_traces = 2 + Prng.int prng 3 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:(20 + Prng.int prng 40) prng in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 2) prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let cfg f = { Engine.default_config with Engine.pin_filtering = f } in
        let on, _ = run_config ~config:(cfg true) ~names ~net raws in
        let off, skipped_off = run_config ~config:(cfg false) ~names ~net raws in
        if skipped_off <> 0 then QCheck.Test.fail_reportf "skips counted with filtering off"
        else if on <> off then
          QCheck.Test.fail_reportf "filtering changed an observable on pattern:@.%s" src
        else true)

(* A deterministic scenario where the filter provably fires: a lone
   concurrent A cannot precede the terminating B, so the anchored search
   fails exhaustively and the (A, P0) pin is skipped as subsumed. *)
let skip_fires_and_is_sound () =
  let names = [| "P0"; "P1" |] in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let run filtering =
    let poet = Poet.create ~trace_names:names () in
    let engine =
      Engine.create ~config:{ Engine.default_config with Engine.pin_filtering = filtering } ~net
        ~poet ()
    in
    let internal tr ty =
      ignore (Poet.ingest poet { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal })
    in
    internal 0 "A";
    internal 1 "B";
    (observe engine, Engine.pinned_skipped engine)
  in
  let on, skipped_on = run true in
  let off, skipped_off = run false in
  check "observables equal" true (on = off);
  check_int "no skips with filtering off" 0 skipped_off;
  check_int "the futile pin was skipped" 1 skipped_on

let skip_metric_exposed () =
  let names = [| "P0"; "P1" |] in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~net ~poet () in
  let internal tr ty =
    ignore (Poet.ingest poet { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal })
  in
  internal 0 "A";
  internal 1 "B";
  Engine.sync_metrics engine;
  let prom = Ocep_obs.Snapshot.prometheus (Engine.metrics engine) in
  check "counter exported" true (contains prom "ocep_pinned_skipped_total");
  check "skip counted in exposition" true (contains prom "ocep_pinned_skipped_total 1")

(* ------------------------------------------------------------------ *)
(* Arena subscription == record subscription, end to end               *)
(* ------------------------------------------------------------------ *)

(* The flat-arena fast path must be report-identical to the boxed
   record path on every built-in workload — the four paper case
   studies and the four protocol cases — sequentially and with the
   search pool forced on (4 workers, zero cutover). One digest per
   (arena, parallelism) cell; all four cells must agree. *)
let arena_equals_record_all_workloads () =
  List.iter
    (fun case ->
      (* 5 traces satisfies every workload's minimum (election needs 4,
         ordering's random walk 5) *)
      let w = Cases.make case ~traces:5 ~seed:2013 ~max_events:2_000 in
      let names = Sim.trace_names w.Workload.sim_config in
      let net = net_of w.Workload.pattern in
      let raws = ref [] in
      ignore
        (Sim.run w.Workload.sim_config
           ~sink:(fun r -> raws := r :: !raws)
           ~bodies:w.Workload.bodies);
      let raws = List.rev !raws in
      let digest ~arena ~parallelism =
        let config =
          {
            Engine.default_config with
            Engine.record_latency = false;
            arena;
            parallelism;
            cutover_batch = (if parallelism > 1 then 0 else Engine.default_config.Engine.cutover_batch);
            cutover_work = (if parallelism > 1 then 0 else Engine.default_config.Engine.cutover_work);
          }
        in
        let poet = Poet.create ~trace_names:names () in
        let engine = Engine.create ~config ~net ~poet () in
        Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
        List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
        Ocep_harness.Runner.reports_digest engine
      in
      let reference = digest ~arena:true ~parallelism:1 in
      List.iter
        (fun (arena, parallelism) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: arena=%b workers=%d" case arena parallelism)
            reference
            (digest ~arena ~parallelism))
        [ (false, 1); (true, 4); (false, 4) ])
    Cases.all_names

let () =
  Alcotest.run "hotpath"
    [
      ( "interning",
        [ QCheck_alcotest.to_alcotest interned_equals_string_reference ] );
      ( "arena parity",
        [
          Alcotest.test_case "arena = record on all 8 workloads, seq and 4-worker" `Quick
            arena_equals_record_all_workloads;
        ] );
      ( "pin filtering",
        [
          QCheck_alcotest.to_alcotest filtering_changes_no_observable;
          Alcotest.test_case "skip fires and is sound" `Quick skip_fires_and_is_sound;
          Alcotest.test_case "skip metric exposed" `Quick skip_metric_exposed;
        ] );
    ]
