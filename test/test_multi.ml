(* The multi-pattern engine core: a registry engine with N patterns must
   be observably identical, per pattern, to N dedicated single-pattern
   engines fed the same stream — across the four case workloads,
   sequential and parallel, with and without pin filtering.  Plus the
   registry lifecycle (add / remove / re-add, shared-class refcounting)
   and the 62-leaf compile-time cap. *)

open Ocep_base
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let net_of src = Compile.compile (Parser.parse src)

(* per-pattern observable state, in a directly comparable shape *)
let observe h =
  let reports =
    List.map
      (fun (r : Subset.report) ->
        ( r.seq,
          r.fresh,
          Array.to_list (Array.map (fun (e : Event.t) -> (e.trace, e.index)) r.events) ))
      (Engine.Handle.reports h)
  in
  ( Engine.Handle.matches_found h,
    Engine.Handle.covered_slots h,
    Engine.Handle.seen_slots h,
    reports )

let replay_multi ~config ~names ~nets raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let hs = List.map (fun net -> Engine.add_pattern engine net) nets in
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      List.map observe hs)

let replay_single ~config ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      observe (List.hd (Engine.handles engine)))

(* ------------------------------------------------------------------ *)
(* Equivalence: multi engine == N dedicated engines                    *)
(* ------------------------------------------------------------------ *)

(* Stream each case workload through one engine holding all four case
   patterns, and through four dedicated engines; every per-pattern
   observable must coincide — the dispatch table, shared history store
   and combined pin batches are pure plumbing.  Exercised over the four
   config quadrants {sequential, 4 workers} x {pin filtering on, off}
   (cut-over thresholds zeroed so parallel runs really use the pool). *)
let multi_equals_singles =
  QCheck.Test.make ~name:"multi-pattern engine = N single-pattern engines (4 workloads)"
    ~count:3 QCheck.small_int (fun seed ->
      let traces = 6 in
      let nets =
        List.map
          (fun name ->
            net_of (Cases.make name ~traces ~seed:1 ~max_events:1).Workload.pattern)
          Cases.names
      in
      let configs =
        List.concat_map
          (fun parallelism ->
            List.map
              (fun pin_filtering ->
                {
                  Engine.default_config with
                  Engine.parallelism;
                  pin_filtering;
                  cutover_batch = 0;
                  cutover_work = 0;
                  record_latency = false;
                })
              [ true; false ])
          [ 1; 4 ]
      in
      List.for_all
        (fun case ->
          let w = Cases.make case ~traces ~seed:(seed + 11) ~max_events:250 in
          let names = Sim.trace_names w.Workload.sim_config in
          let raws = ref [] in
          let _ =
            Sim.run w.Workload.sim_config
              ~sink:(fun r -> raws := r :: !raws)
              ~bodies:w.Workload.bodies
          in
          let raws = List.rev !raws in
          List.for_all
            (fun config ->
              let multi = replay_multi ~config ~names ~nets raws in
              let singles =
                List.map (fun net -> replay_single ~config ~names ~net raws) nets
              in
              if multi <> singles then
                QCheck.Test.fail_reportf
                  "multi diverges from dedicated engines on %s (parallelism=%d, \
                   pin_filtering=%b)"
                  case config.Engine.parallelism config.Engine.pin_filtering
              else true)
            configs)
        Cases.names)

(* ------------------------------------------------------------------ *)
(* Registry lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

let names2 = [| "P0"; "P1" |]
let ab = "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;"

let internal poet tr ty =
  ignore
    (Ocep_poet.Poet.ingest poet
       { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal })

let add_remove_re_add () =
  let poet = Poet.create ~trace_names:names2 () in
  let engine = Engine.create ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  check_int "starts empty" 0 (Engine.pattern_count engine);
  let p0 = Engine.add_pattern engine (net_of ab) in
  check "live handle" true (Engine.Handle.is_live p0);
  check_int "one pattern" 1 (Engine.pattern_count engine);
  Engine.Handle.detach p0;
  check_int "empty after detach" 0 (Engine.pattern_count engine);
  check "detached handle is dead" false (Engine.Handle.is_live p0);
  check "double detach rejected" true
    (match Engine.Handle.detach p0 with
    | () -> false
    | exception Ocep_error.Error (Ocep_error.Stale_handle _) -> true);
  check "accessor on dead handle rejected" true
    (match Engine.Handle.matches_found p0 with
    | _ -> false
    | exception Ocep_error.Error (Ocep_error.Stale_handle _) -> true);
  check "remove by unknown id rejected" true
    (match Engine.remove_pattern engine 99 with
    | () -> false
    | exception Ocep_error.Error (Ocep_error.Unknown_pattern _) -> true);
  (* an empty engine ingests as a no-op *)
  internal poet 0 "A";
  (* hot re-add: a fresh id, and matching works on events arriving after *)
  let p1 = Engine.add_pattern engine (net_of ab) in
  check "fresh id" true (Engine.Handle.id p1 <> Engine.Handle.id p0);
  internal poet 0 "A";
  internal poet 0 "B";
  check "re-added pattern matches" true (Engine.Handle.matches_found p1 > 0)

let accessors_on_empty_engine () =
  let poet = Poet.create ~trace_names:names2 () in
  let engine = Engine.create ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  check "net on empty engine rejected" true
    (match Engine.net engine with _ -> false | exception Invalid_argument _ -> true);
  check_int "no matches" 0 (Engine.matches_found engine);
  check_int "no history" 0 (Engine.history_entries engine)

(* Two patterns whose leaves have equal class keys share one physical
   history class: entries are stored once, and the class survives until
   its last subscriber is removed. *)
let shared_class_refcount () =
  let poet = Poet.create ~trace_names:names2 () in
  let engine =
    Engine.create ~config:{ Engine.default_config with Engine.pruning = false } ~poet ()
  in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let p0 = Engine.add_pattern engine (net_of ab) in
  let p1 =
    Engine.add_pattern engine (net_of "X := [_, A, _]; Y := [$p, B, _]; pattern := X || Y;")
  in
  (* A and B each match one class entry, shared by both patterns *)
  internal poet 0 "A";
  internal poet 1 "B";
  check_int "stored once despite two subscribers" 2 (Engine.history_entries engine);
  Engine.Handle.detach p1;
  check_int "classes survive the other subscriber's removal" 2 (Engine.history_entries engine);
  Engine.Handle.detach p0;
  check_int "releasing the last subscriber frees the store" 0 (Engine.history_entries engine)

let dedup_matches_single_engine () =
  (* a two-same-class-leaf pattern stores no more than a one-leaf one *)
  let poet = Poet.create ~trace_names:names2 () in
  let engine =
    Engine.create ~config:{ Engine.default_config with Engine.pruning = false } ~poet ()
  in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let _ =
    Engine.add_pattern engine (net_of "S1 := [_, A, $d]; S2 := [_, A, $d]; pattern := S1 || S2;")
  in
  internal poet 0 "A";
  internal poet 1 "A";
  check_int "same-class leaves share entries" 2 (Engine.history_entries engine)

(* ------------------------------------------------------------------ *)
(* The discrimination network                                          *)
(* ------------------------------------------------------------------ *)

(* remove_pattern is the id-keyed incremental network edit Handle.detach
   delegates to; it must keep agreeing with the handle API *)
let remove_pattern_by_id () =
  let poet = Poet.create ~trace_names:names2 () in
  let engine = Engine.create ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let h = Engine.add_pattern engine (net_of ab) in
  internal poet 0 "A";
  internal poet 0 "B";
  Engine.remove_pattern engine (Engine.Handle.id h);
  check "remove_pattern detaches the handle" false (Engine.Handle.is_live h);
  check_int "no live patterns" 0 (Engine.pattern_count engine);
  check_int "network emptied" 0 (Engine.automaton_nodes engine)

(* equal class keys across patterns collapse into one automaton node,
   and dispatch through a shared node counts its saved evaluations *)
let node_sharing_and_shared_evals () =
  let poet = Poet.create ~trace_names:names2 () in
  let engine = Engine.create ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let h0 = Engine.add_pattern engine (net_of ab) in
  check_int "2 leaves, 2 nodes" 2 (Engine.automaton_nodes engine);
  (* same two class keys: no new nodes at all *)
  let _h1 = Engine.add_pattern engine (net_of ab) in
  check_int "structurally equal pattern adds no node" 2 (Engine.automaton_nodes engine);
  (* one overlapping key ([_, A, _]), one fresh ([_, C, _]) *)
  let _h2 = Engine.add_pattern engine (net_of "X := [_, A, _]; Y := [_, C, _]; pattern := X -> Y;") in
  check_int "only the unseen class allocates" 3 (Engine.automaton_nodes engine);
  check_int "allocation counter agrees" 3 (Engine.automaton_nodes_total engine);
  check_int "no dispatch yet" 0 (Engine.automaton_shared_evals engine);
  (* an A event's only candidate is the [_, A, _] node (exact-type
     dispatch): 3 subscribers ride on 1 test -> 2 saved evals *)
  internal poet 0 "A";
  check_int "shared evals counted per tested node" 2 (Engine.automaton_shared_evals engine);
  (* detaching one subscriber keeps the node but not its saving *)
  Engine.Handle.detach h0;
  check_int "nodes survive while subscribed" 3 (Engine.automaton_nodes engine);
  check_int "released ids are recycled, not reallocated" 3 (Engine.automaton_nodes_total engine)

(* ------------------------------------------------------------------ *)
(* The 62-leaf cap                                                     *)
(* ------------------------------------------------------------------ *)

(* k leaves: k declared instances chained pairwise, so every leaf is
   referenced through its event variable and counted exactly once *)
let chain_pattern k =
  let buf = Buffer.create 1024 in
  for i = 1 to k do
    Buffer.add_string buf (Printf.sprintf "C%d := [_, T%d, _];\nC%d $c%d;\n" i i i i)
  done;
  Buffer.add_string buf "pattern := ";
  for i = 1 to k - 1 do
    if i > 1 then Buffer.add_string buf " && ";
    Buffer.add_string buf (Printf.sprintf "($c%d -> $c%d)" i (i + 1))
  done;
  Buffer.add_string buf ";\n";
  Buffer.contents buf

let leaf_cap_enforced () =
  (* 62 leaves: the matcher's conflict bitsets still fit one word *)
  let net = net_of (chain_pattern Compile.max_leaves) in
  check_int "62 leaves compile" Compile.max_leaves (Compile.size net);
  (* and the registry accepts them *)
  let poet = Poet.create ~trace_names:names2 () in
  let engine = Engine.create ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let h = Engine.add_pattern engine net in
  check_int "registered" 1 (Engine.pattern_count engine);
  Engine.Handle.detach h;
  (* 63 leaves: rejected at compile time with a clear message *)
  match net_of (chain_pattern (Compile.max_leaves + 1)) with
  | _ -> Alcotest.fail "63-leaf pattern should not compile"
  | exception Invalid_argument msg ->
    check "message names the cap" true
      (let cap = string_of_int Compile.max_leaves in
       let rec contains i =
         i + String.length cap <= String.length msg
         && (String.sub msg i (String.length cap) = cap || contains (i + 1))
       in
       contains 0)

(* The same boundary through a template: the cap applies per concrete
   instantiated pattern, and an oversized binding's error names the
   template and the binding (not just the anonymous expansion). *)
let template_chain k =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "template big($t) {\n";
  Buffer.add_string buf "C1 := [_, T1, $t];\nC1 $c1;\n";
  for i = 2 to k do
    Buffer.add_string buf (Printf.sprintf "C%d := [_, T%d, _];\nC%d $c%d;\n" i i i i)
  done;
  Buffer.add_string buf "pattern := ";
  for i = 1 to k - 1 do
    if i > 1 then Buffer.add_string buf " && ";
    Buffer.add_string buf (Printf.sprintf "($c%d -> $c%d)" i (i + 1))
  done;
  Buffer.add_string buf ";\n}\ninstantiate big(x);\n";
  Buffer.contents buf

let contains_sub msg sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
  in
  go 0

let template_leaf_cap_enforced () =
  (* at the cap: the instance compiles and registers *)
  (match Compile.compile_file (Parser.parse_file (template_chain Compile.max_leaves)) with
  | [ (name, net) ] ->
    Alcotest.(check string) "instance named by binding" "big('x')" name;
    check_int "62-leaf instance compiles" Compile.max_leaves (Compile.size net)
  | _ -> Alcotest.fail "expected exactly one instance");
  (* one past the cap: the error names template, binding and cap *)
  match Compile.compile_file (Parser.parse_file (template_chain (Compile.max_leaves + 1))) with
  | _ -> Alcotest.fail "63-leaf instance should not compile"
  | exception Invalid_argument msg ->
    check "error names the template" true (contains_sub msg "template big");
    check "error names the binding" true (contains_sub msg "('x')");
    check "error names the cap" true (contains_sub msg (string_of_int Compile.max_leaves))

let () =
  Alcotest.run "multi"
    [
      ("equivalence", [ QCheck_alcotest.to_alcotest multi_equals_singles ]);
      ( "registry",
        [
          Alcotest.test_case "add / remove / re-add" `Quick add_remove_re_add;
          Alcotest.test_case "empty engine accessors" `Quick accessors_on_empty_engine;
          Alcotest.test_case "shared-class refcount" `Quick shared_class_refcount;
          Alcotest.test_case "same-class dedup" `Quick dedup_matches_single_engine;
          Alcotest.test_case "remove_pattern by id" `Quick remove_pattern_by_id;
          Alcotest.test_case "node sharing + shared evals" `Quick node_sharing_and_shared_evals;
        ] );
      ( "leaf cap",
        [
          Alcotest.test_case "62-leaf boundary" `Quick leaf_cap_enforced;
          Alcotest.test_case "62-leaf boundary via template" `Quick template_leaf_cap_enforced;
        ] );
    ]
