(* The OCEP matcher: hand-built scenarios for every operator, domain
   restriction (Fig. 4), and equivalence with the exhaustive oracle on
   random computations and random patterns. *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module History = Ocep.History
module Domain = Ocep.Domain
module Matcher = Ocep.Matcher
module Oracle = Ocep_baselines.Oracle
module Build = Testutil.Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let net_of src = Compile.compile (Parser.parse src)

(* Build a History from already-timestamped events. *)
let history_of net ~n_traces events =
  let h = History.create net ~n_traces ~pruning:false () in
  List.iter
    (fun ev ->
      History.note_comm h ev;
      for i = 0 to Compile.size net - 1 do
        if Compile.leaf_matches net i ev then History.add h ~leaf:i ev
      done)
    events;
  h

let inet_of poet net = Compile.intern_net net ~intern:(Symbol.intern (Poet.symbols poet))

let search ?pin ?node_budget net poet events ~anchor_leaf ~anchor =
  let n_traces = Poet.trace_count poet in
  let history = history_of net ~n_traces events in
  Matcher.search ~net:(inet_of poet net) ~history ~n_traces
    ~trace_of_sym:(Poet.trace_of_sym poet)
    ~partner_of:(Poet.find_partner poet) ~anchor_leaf ~anchor ?pin ?node_budget ()

(* ------------------------------------------------------------------ *)
(* Scenario tests                                                      *)
(* ------------------------------------------------------------------ *)

let happens_before_found () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let a = Build.internal b 0 "A" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let bb = Build.internal b 1 "B" in
  (match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' ->
    check "a bound" true (Event.equal m'.(0) a);
    check "b bound" true (Event.equal m'.(1) bb)
  | _ -> Alcotest.fail "expected a match");
  ignore a

let happens_before_not_found_when_concurrent () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a = Build.internal b 0 "A" in
  let bb = Build.internal b 1 "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no match (a || b)"

let concurrency_found () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a = Build.internal b 0 "A" in
  let bb = Build.internal b 1 "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found _ -> ()
  | _ -> Alcotest.fail "expected concurrent match"

let concurrency_rejects_ordered () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a = Build.internal b 0 "A" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let bb = Build.internal b 1 "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no match (a -> b)"

let newest_match_preferred () =
  (* two candidate a's on the same trace: the most recent is returned *)
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a1 = Build.internal b 0 "A" in
  let a2 = Build.internal b 0 "A" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let bb = Build.internal b 1 "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' -> check "newest a" true (Event.equal m'.(0) a2)
  | _ -> Alcotest.fail "expected a match"

let partner_operator () =
  let net = net_of "S := [_, S, _]; R := [_, R, _]; pattern := S <> R;" in
  let b = Build.create [| "P0"; "P1" |] in
  (* a decoy unrelated message *)
  let m0, _ = Build.send b ~src:1 ~etype:"S" () in
  let _ = Build.recv b ~dst:0 ~etype:"X" m0 in
  let m, s = Build.send b ~src:0 ~etype:"S" () in
  let r = Build.recv b ~dst:1 ~etype:"R" m in
  (match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:r with
  | Matcher.Found m' ->
    check "send is partner" true (Event.equal m'.(0) s);
    check "recv bound" true (Event.equal m'.(1) r)
  | _ -> Alcotest.fail "expected partner match");
  (* receive whose send has the wrong class finds nothing *)
  let m2, _ = Build.send b ~src:0 ~etype:"Other" () in
  let r2 = Build.recv b ~dst:1 ~etype:"R" m2 in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:r2 with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no partner match"

let limited_happens_before () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A ~> B;" in
  let b = Build.create [| "P0" |] in
  let a1 = Build.internal b 0 "A" in
  let _a2 = Build.internal b 0 "A" in
  let bb = Build.internal b 0 "B" in
  (* a1 -> a2 -> b: a1 ~> b fails, a2 ~> b holds; matcher must return a2 *)
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' ->
    check "a2 not a1" true (not (Event.equal m'.(0) a1));
    check_int "a2 index" 2 m'.(0).Event.index
  | _ -> Alcotest.fail "expected lim match"

let variable_binding_process () =
  (* $p must bind the same trace name across the two classes *)
  let net = net_of "A := [$p, A, _]; B := [$p, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a_wrong = Build.internal b 1 "A" in
  let a_right = Build.internal b 0 "A" in
  let bb = Build.internal b 0 "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' -> check "same process" true (Event.equal m'.(0) a_right)
  | _ -> Alcotest.fail "expected match on same process"

let variable_binding_text () =
  let net = net_of "A := [_, A, $t]; B := [_, B, $t]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  let _a1 = Build.internal b 0 ~text:"red" "A" in
  let a2 = Build.internal b 0 ~text:"blue" "A" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let bb = Build.internal b 1 ~text:"blue" "B" in
  (match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' -> check "text matched" true (Event.equal m'.(0) a2)
  | _ -> Alcotest.fail "expected text-bound match");
  let bb2 = Build.internal b 1 ~text:"green" "B" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb2 with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no match for unseen text"

let event_variable_shared () =
  (* $a -> B && $a -> C: both constraints on the same occurrence *)
  let net =
    net_of "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a;\npattern := $a -> B && $a -> C;"
  in
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let _a = Build.internal b 0 "A" in
  let m1, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m1 in
  let _bb = Build.internal b 1 "B" in
  let m2, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:2 m2 in
  let cc = Build.internal b 2 "C" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:2 ~anchor:cc with
  | Matcher.Found _ -> ()
  | _ -> Alcotest.fail "expected shared-variable match"

let pin_forces_trace () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let a0 = Build.internal b 0 "A" in
  let a1 = Build.internal b 1 "A" in
  let m0, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:2 m0 in
  let m1, _ = Build.send b ~src:1 () in
  let _ = Build.recv b ~dst:2 m1 in
  let bb = Build.internal b 2 "B" in
  (match search ~pin:(0, 1) net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' -> check "pinned to P1" true (Event.equal m'.(0) a1)
  | _ -> Alcotest.fail "expected pinned match");
  match search ~pin:(0, 0) net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb with
  | Matcher.Found m' -> check "pinned to P0" true (Event.equal m'.(0) a0)
  | _ -> Alcotest.fail "expected pinned match"

let anchor_must_match () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0" |] in
  let a = Build.internal b 0 "A" in
  (try
     ignore (search net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:a);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let node_budget_aborts () =
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a; B $b; C $c;\n\
       pattern := $a || $b && $b || $c && $a || $c;"
  in
  let b = Build.create [| "P0"; "P1"; "P3" |] in
  (* C events exist but are all causally before the anchor, so the C level
     keeps wiping out while the A level has plenty of candidates to burn *)
  for _ = 1 to 30 do
    ignore (Build.internal b 0 "A")
  done;
  ignore (Build.internal b 2 "C");
  ignore (Build.internal b 2 "C");
  let m, _ = Build.send b ~src:2 () in
  let _ = Build.recv b ~dst:1 m in
  let anchor = Build.internal b 1 "B" in
  match search ~node_budget:5 net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor with
  | Matcher.Aborted -> ()
  | Matcher.Found _ -> Alcotest.fail "should not find (C ordered before anchor)"
  | Matcher.Not_found -> Alcotest.fail "budget too large for test"

let compound_weak_precedence_match () =
  (* (A -> B) -> (C -> D): needs some forward pair and no backward pair *)
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) -> (C -> D);"
  in
  let b = Build.create [| "P0"; "P1" |] in
  let _a = Build.internal b 0 "A" in
  let _bb = Build.internal b 0 "B" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let _c = Build.internal b 1 "C" in
  let d = Build.internal b 1 "D" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:3 ~anchor:d with
  | Matcher.Found _ -> ()
  | _ -> Alcotest.fail "expected compound match"

let strong_precedence_rejects_partial_order () =
  (* (A -> B) => (C -> D) needs every cross pair ordered; one concurrent
     pair breaks it, while weak precedence (->) still matches *)
  let mk op =
    net_of
      (Printf.sprintf
         "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
          pattern := (A -> B) %s (C -> D);" op)
  in
  let b = Build.create [| "P0"; "P1" |] in
  let _a = Build.internal b 0 "A" in
  let _bb = Build.internal b 0 "B" in
  let m, _ = Build.send b ~src:0 () in
  (* C happens before the message is received: concurrent with A and B *)
  let _c = Build.internal b 1 "C" in
  let _ = Build.recv b ~dst:1 m in
  let d = Build.internal b 1 "D" in
  (match search (mk "->") (Build.poet b) (Build.events b) ~anchor_leaf:3 ~anchor:d with
  | Matcher.Found _ -> ()
  | _ -> Alcotest.fail "weak precedence should match");
  match search (mk "=>") (Build.poet b) (Build.events b) ~anchor_leaf:3 ~anchor:d with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "strong precedence must reject (c || a)"

let entangled_compounds_match_crossing () =
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) <-> (C -> D);"
  in
  let b = Build.create [| "P0"; "P1" |] in
  (* crossing: a -> d (via m1), c -> b (via m2) *)
  let _a = Build.internal b 0 "A" in
  let m1, _ = Build.send b ~src:0 () in
  let _c = Build.internal b 1 "C" in
  let m2, _ = Build.send b ~src:1 () in
  let _ = Build.recv b ~dst:0 m2 in
  let _bb = Build.internal b 0 "B" in
  let _ = Build.recv b ~dst:1 m1 in
  let d = Build.internal b 1 "D" in
  (match search net (Build.poet b) (Build.events b) ~anchor_leaf:3 ~anchor:d with
  | Matcher.Found m ->
    (* verify it really crosses per the Compound definitions *)
    let module Compound = Ocep_pattern.Compound in
    check "crosses" true (Compound.crosses [ m.(0); m.(1) ] [ m.(2); m.(3) ])
  | _ -> Alcotest.fail "expected entangled match");
  (* a fully-ordered scenario must not be entangled *)
  let b2 = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b2 0 "A" in
  let _ = Build.internal b2 0 "B" in
  let m, _ = Build.send b2 ~src:0 () in
  let _ = Build.recv b2 ~dst:1 m in
  let _ = Build.internal b2 1 "C" in
  let d2 = Build.internal b2 1 "D" in
  match search net (Build.poet b2) (Build.events b2) ~anchor_leaf:3 ~anchor:d2 with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "ordered compounds are not entangled"

let compound_exists_rejected_when_all_concurrent () =
  let net =
    net_of
      "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; D := [_, D, _];\n\
       pattern := (A -> B) -> (C -> D);"
  in
  let b = Build.create [| "P0"; "P1" |] in
  (* A -> B on P0; C -> D on P1; completely concurrent: no forward pair *)
  let _a = Build.internal b 0 "A" in
  let _bb = Build.internal b 0 "B" in
  let _c = Build.internal b 1 "C" in
  let d = Build.internal b 1 "D" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:3 ~anchor:d with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no match (no existential pair)"

let strong_equals_arrow_on_primitives () =
  (* on primitive operands => and -> coincide *)
  let mk op = net_of (Printf.sprintf "A := [_, A, _]; B := [_, B, _]; pattern := A %s B;" op) in
  let b = Build.create [| "P0"; "P1" |] in
  let _ = Build.internal b 0 "A" in
  let m, _ = Build.send b ~src:0 () in
  let _ = Build.recv b ~dst:1 m in
  let bb = Build.internal b 1 "B" in
  let outcome op = search (mk op) (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:bb in
  (match (outcome "->", outcome "=>") with
  | Matcher.Found m1, Matcher.Found m2 -> check "same event" true (Event.equal m1.(0) m2.(0))
  | _ -> Alcotest.fail "both should find")

let partner_with_pin () =
  let net = net_of "S := [_, S, _]; R := [_, R, _]; pattern := S <> R;" in
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let m1, _ = Build.send b ~src:0 ~etype:"S" () in
  let r1 = Build.recv b ~dst:1 ~etype:"R" m1 in
  ignore r1;
  let m2, s2 = Build.send b ~src:2 ~etype:"S" () in
  let r2 = Build.recv b ~dst:1 ~etype:"R" m2 in
  (* pin the send leaf to P2: only r2's partner lives there *)
  (match search ~pin:(0, 2) net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:r2 with
  | Matcher.Found m -> check "partner from P2" true (Event.equal m.(0) s2)
  | _ -> Alcotest.fail "expected pinned partner match");
  (* r2's partner is on P2, so pinning the send leaf to P0 must fail *)
  match search ~pin:(0, 0) net (Build.poet b) (Build.events b) ~anchor_leaf:1 ~anchor:r2 with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected failure: partner not on pinned trace"

let three_way_variable_chain () =
  (* $x flows through three classes' text fields *)
  let net =
    net_of
      "A := [_, A, $x]; B := [_, B, $x]; C := [_, C, $x];\n\
       A $a; B $b; C $c; pattern := $a -> $b && $b -> $c;"
  in
  let b = Build.create [| "P0" |] in
  let _ = Build.internal b 0 ~text:"red" "A" in
  let _ = Build.internal b 0 ~text:"blue" "A" in
  let _ = Build.internal b 0 ~text:"blue" "B" in
  let _ = Build.internal b 0 ~text:"red" "B" in
  let c_red = Build.internal b 0 ~text:"red" "C" in
  (match search net (Build.poet b) (Build.events b) ~anchor_leaf:2 ~anchor:c_red with
  | Matcher.Found m ->
    check "all red" true
      (m.(0).Event.text = "red" && m.(1).Event.text = "red" && m.(2).Event.text = "red");
    (* and the causal chain holds on the single trace *)
    check "ordered" true (Event.hb m.(0) m.(1) && Event.hb m.(1) m.(2))
  | _ -> Alcotest.fail "expected red chain");
  (* a green C has no chain *)
  let c_green = Build.internal b 0 ~text:"green" "C" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:2 ~anchor:c_green with
  | Matcher.Not_found -> ()
  | _ -> Alcotest.fail "expected no chain for green"

let single_leaf_pattern () =
  let net = net_of "A := [_, A, 'x']; pattern := A;" in
  let b = Build.create [| "P0" |] in
  let good = Build.internal b 0 ~text:"x" "A" in
  match search net (Build.poet b) (Build.events b) ~anchor_leaf:0 ~anchor:good with
  | Matcher.Found m -> check "self match" true (Event.equal m.(0) good)
  | _ -> Alcotest.fail "single-leaf pattern should match its anchor"

(* ------------------------------------------------------------------ *)
(* Domain restriction (Fig. 4)                                          *)
(* ------------------------------------------------------------------ *)

let domain_cases () =
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let b = Build.create [| "P0"; "P1" |] in
  (* P0: a1 a2 | send m | a3 ; P1: recv m, w *)
  let _a1 = Build.internal b 0 "A" in
  let _a2 = Build.internal b 0 "A" in
  let m, _ = Build.send b ~src:0 () in
  let _a3 = Build.internal b 0 "A" in
  let _ = Build.recv b ~dst:1 m in
  let w = Build.internal b 1 "W" in
  let h = history_of net ~n_traces:2 (Build.events b) in
  let hist = History.on h ~leaf:0 ~trace:0 in
  check_int "three As stored" 3 (Vec.length hist);
  (* before w: a1, a2 (positions 0,1); a3 is concurrent with w *)
  let dom_before = Domain.restrict hist ~trace:0 ~w { Compile.before = true; after = false; concurrent = false } in
  check "before = {0,1}" true (Interval.Set.elements dom_before = [ 0; 1 ]);
  let dom_conc = Domain.restrict hist ~trace:0 ~w { Compile.before = false; after = false; concurrent = true } in
  check "concurrent = {2}" true (Interval.Set.elements dom_conc = [ 2 ]);
  let dom_after = Domain.restrict hist ~trace:0 ~w { Compile.before = false; after = true; concurrent = false } in
  check "after = {}" true (Interval.Set.is_empty dom_after);
  (* all three allowed = everything *)
  let dom_all = Domain.restrict hist ~trace:0 ~w { Compile.before = true; after = true; concurrent = true } in
  check "all = {0,1,2}" true (Interval.Set.elements dom_all = [ 0; 1; 2 ])

let domain_same_trace_excludes_self () =
  let net = net_of "A := [_, A, _]; pattern := A;" in
  let b = Build.create [| "P0" |] in
  let _ = Build.internal b 0 "A" in
  let a2 = Build.internal b 0 "A" in
  let _ = Build.internal b 0 "A" in
  let h = history_of net ~n_traces:1 (Build.events b) in
  let hist = History.on h ~leaf:0 ~trace:0 in
  let dom =
    Domain.restrict hist ~trace:0 ~w:a2 { Compile.before = true; after = true; concurrent = true }
  in
  check "self excluded" true (Interval.Set.elements dom = [ 0; 2 ])

(* ------------------------------------------------------------------ *)
(* Properties against the oracle                                        *)
(* ------------------------------------------------------------------ *)

(* soundness + anchored completeness: for every event e and terminating
   leaf l that e matches, the matcher finds a match iff the oracle has one
   containing e at l; and any found match is a real match. *)
let matcher_agrees_with_oracle =
  QCheck.Test.make ~name:"matcher = oracle (anchored existence + soundness)" ~count:120
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 101) in
      let n_traces = 2 + Prng.int prng 2 in
      let raws = Testutil.Gen.computation ~n_traces ~length:(10 + Prng.int prng 15) prng in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let poet, events = Testutil.ingest_all names raws in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 2) prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let history = history_of net ~n_traces events in
        let inet = inet_of poet net in
        let oracle_matches = Oracle.all_matches ~net ~events in
        let ok = ref true in
        List.iter
          (fun ev ->
            for leaf = 0 to Compile.size net - 1 do
              if !ok && Compile.leaf_matches net leaf ev then begin
                let outcome =
                  Matcher.search ~net:inet ~history ~n_traces
                    ~trace_of_sym:(Poet.trace_of_sym poet)
                    ~partner_of:(Poet.find_partner poet) ~anchor_leaf:leaf ~anchor:ev ()
                in
                let oracle_has =
                  List.exists (fun m -> Event.equal m.(leaf) ev) oracle_matches
                in
                match outcome with
                | Matcher.Found m ->
                  if not oracle_has then ok := false;
                  if not (Oracle.is_match ~net ~events m) then ok := false;
                  if not (Event.equal m.(leaf) ev) then ok := false
                | Matcher.Not_found -> if oracle_has then ok := false
                | Matcher.Aborted -> ok := false
              end
            done)
          events;
        if not !ok then
          QCheck.Test.fail_reportf "disagreement on pattern:@.%s@.with %d events" src
            (List.length events)
        else true)

(* pinned searches: found iff the oracle has a match with that leaf on that
   trace containing the anchor *)
let pinned_matches_oracle =
  QCheck.Test.make ~name:"pinned search = oracle filtered by slot" ~count:60 QCheck.small_int
    (fun seed ->
      let prng = Prng.create (seed + 500) in
      let n_traces = 2 + Prng.int prng 2 in
      let raws = Testutil.Gen.computation ~n_traces ~length:(10 + Prng.int prng 10) prng in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let poet, events = Testutil.ingest_all names raws in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let history = history_of net ~n_traces events in
        let inet = inet_of poet net in
        let oracle_matches = Oracle.all_matches ~net ~events in
        let k = Compile.size net in
        let ok = ref true in
        List.iter
          (fun ev ->
            for leaf = 0 to k - 1 do
              if !ok && Compile.leaf_matches net leaf ev then
                for pin_leaf = 0 to k - 1 do
                  if pin_leaf <> leaf then
                    for pin_trace = 0 to n_traces - 1 do
                      if !ok then begin
                        let outcome =
                          Matcher.search ~net:inet ~history ~n_traces
                            ~trace_of_sym:(Poet.trace_of_sym poet)
                            ~partner_of:(Poet.find_partner poet) ~anchor_leaf:leaf ~anchor:ev
                            ~pin:(pin_leaf, pin_trace) ()
                        in
                        let oracle_has =
                          List.exists
                            (fun m ->
                              Event.equal m.(leaf) ev && m.(pin_leaf).Event.trace = pin_trace)
                            oracle_matches
                        in
                        match outcome with
                        | Matcher.Found m ->
                          if not (oracle_has && m.(pin_leaf).Event.trace = pin_trace) then
                            ok := false
                        | Matcher.Not_found -> if oracle_has then ok := false
                        | Matcher.Aborted -> ok := false
                      end
                    done
                done
            done)
          events;
        !ok)

(* ------------------------------------------------------------------ *)
(* Parallel search (future work #3)                                    *)
(* ------------------------------------------------------------------ *)

let pool_basics () =
  let pool = Ocep.Pool.create ~workers:3 in
  let results = Ocep.Pool.run_all pool (Array.init 20 (fun i () -> i * i)) in
  check "ordered results" true (results = Array.init 20 (fun i -> i * i));
  (* exceptions propagate *)
  (try
     ignore (Ocep.Pool.run_all pool [| (fun () -> failwith "boom") |]);
     Alcotest.fail "expected exception"
   with Failure _ -> ());
  (* pool still usable after a failing batch *)
  let r2 = Ocep.Pool.run_all pool [| (fun () -> 7) |] in
  check "usable after failure" true (r2 = [| 7 |]);
  Ocep.Pool.shutdown pool;
  Ocep.Pool.shutdown pool (* idempotent *)

let par_agrees_with_sequential =
  QCheck.Test.make ~name:"parallel search = sequential search (existence)" ~count:40
    QCheck.small_int (fun seed ->
      let pool = Ocep.Pool.create ~workers:4 in
      let finally () = Ocep.Pool.shutdown pool in
      Fun.protect ~finally (fun () ->
          let prng = Prng.create (seed + 31337) in
          let n_traces = 2 + Prng.int prng 2 in
          let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
          let raws = Testutil.Gen.computation ~n_traces ~length:25 prng in
          let poet, events = Testutil.ingest_all names raws in
          let src = Testutil.Gen.pattern ~n_classes:2 prng in
          match Compile.compile (Parser.parse src) with
          | exception Compile.Compile_error _ -> true
          | net ->
            let history = history_of net ~n_traces events in
            let inet = inet_of poet net in
            List.for_all
              (fun ev ->
                List.for_all
                  (fun leaf ->
                    if not (Compile.leaf_matches net leaf ev) then true
                    else begin
                      let seq =
                        Matcher.search ~net:inet ~history ~n_traces
                          ~trace_of_sym:(Poet.trace_of_sym poet)
                          ~partner_of:(Poet.find_partner poet) ~anchor_leaf:leaf ~anchor:ev ()
                      in
                      let par =
                        Ocep.Par.search ~pool ~net:inet ~history ~n_traces
                          ~trace_of_sym:(Poet.trace_of_sym poet)
                          ~partner_of:(Poet.find_partner poet) ~anchor_leaf:leaf ~anchor:ev ()
                      in
                      match (seq, par) with
                      | Matcher.Found m1, Matcher.Found m2 ->
                        Oracle.is_match ~net ~events m1 && Oracle.is_match ~net ~events m2
                      | Matcher.Not_found, Matcher.Not_found -> true
                      | _ -> false
                    end)
                  (List.init (Compile.size net) (fun i -> i)))
              events))

let () =
  Alcotest.run "matcher"
    [
      ( "scenarios",
        [
          Alcotest.test_case "happens-before found" `Quick happens_before_found;
          Alcotest.test_case "concurrent rejected for ->" `Quick happens_before_not_found_when_concurrent;
          Alcotest.test_case "concurrency found" `Quick concurrency_found;
          Alcotest.test_case "ordered rejected for ||" `Quick concurrency_rejects_ordered;
          Alcotest.test_case "newest match preferred" `Quick newest_match_preferred;
          Alcotest.test_case "partner operator" `Quick partner_operator;
          Alcotest.test_case "limited happens-before" `Quick limited_happens_before;
          Alcotest.test_case "process variable" `Quick variable_binding_process;
          Alcotest.test_case "text variable" `Quick variable_binding_text;
          Alcotest.test_case "event variable" `Quick event_variable_shared;
          Alcotest.test_case "pin forces trace" `Quick pin_forces_trace;
          Alcotest.test_case "anchor must match" `Quick anchor_must_match;
          Alcotest.test_case "node budget aborts" `Quick node_budget_aborts;
          Alcotest.test_case "compound weak precedence" `Quick compound_weak_precedence_match;
          Alcotest.test_case "strong precedence" `Quick strong_precedence_rejects_partial_order;
          Alcotest.test_case "entanglement" `Quick entangled_compounds_match_crossing;
          Alcotest.test_case "compound existential rejected" `Quick compound_exists_rejected_when_all_concurrent;
          Alcotest.test_case "strong = arrow on primitives" `Quick strong_equals_arrow_on_primitives;
          Alcotest.test_case "partner with pin" `Quick partner_with_pin;
          Alcotest.test_case "three-way variable chain" `Quick three_way_variable_chain;
          Alcotest.test_case "single-leaf pattern" `Quick single_leaf_pattern;
        ] );
      ( "domains",
        [
          Alcotest.test_case "Fig 4 cases" `Quick domain_cases;
          Alcotest.test_case "self excluded" `Quick domain_same_trace_excludes_self;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest matcher_agrees_with_oracle;
          QCheck_alcotest.to_alcotest pinned_matches_oracle;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool basics" `Quick pool_basics;
          QCheck_alcotest.to_alcotest par_agrees_with_sequential;
        ] );
    ]
