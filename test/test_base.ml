open Ocep_base

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Prng.bits64 a = Prng.bits64 b)
  done

let prng_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check "streams differ" true (!same < 4)

let prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    check "in bounds" true (v >= 0 && v < 17)
  done

let prng_split_independent () =
  let p = Prng.create 9 in
  let q = Prng.split p in
  check "split differs from parent" true (Prng.bits64 p <> Prng.bits64 q)

let prng_bernoulli_rate () =
  let p = Prng.create 3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli p 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.25" true (rate > 0.22 && rate < 0.28)

let prng_shuffle_permutation () =
  let p = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check "is a permutation" true (sorted = Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let vec_basics () =
  let v = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 37 (Vec.get v 37);
  Vec.set v 37 1000;
  check_int "set" 1000 (Vec.get v 37);
  check "last" true (Vec.last v = Some 99);
  Vec.replace_last v 7;
  check "replace_last" true (Vec.last v = Some 7);
  check "pop" true (Vec.pop v = Some 7);
  check_int "after pop" 99 (Vec.length v);
  check "to_list round trip" true (Vec.to_list v = Array.to_list (Vec.to_array v))

let vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 3))

let vec_binary_search () =
  let v = Vec.of_list [ 1; 3; 5; 7; 9 ] in
  check_int "first >= 5" 2 (Vec.binary_search_first v (fun x -> x >= 5));
  check_int "first >= 0" 0 (Vec.binary_search_first v (fun x -> x >= 0));
  check_int "first >= 100" 5 (Vec.binary_search_first v (fun x -> x >= 100));
  check_int "first > 7" 4 (Vec.binary_search_first v (fun x -> x > 7))

let vec_binary_search_prop =
  QCheck.Test.make ~name:"binary_search_first agrees with linear scan" ~count:500
    QCheck.(pair (small_list small_int) small_int)
    (fun (l, threshold) ->
      let l = List.sort compare l in
      let v = Vec.of_list l in
      let expected =
        let rec loop i = function
          | [] -> i
          | x :: rest -> if x >= threshold then i else loop (i + 1) rest
        in
        loop 0 l
      in
      Vec.binary_search_first v (fun x -> x >= threshold) = expected)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let interval_basics () =
  let i = Interval.make 2 5 in
  check "mem 2" true (Interval.mem 2 i);
  check "mem 5" true (Interval.mem 5 i);
  check "not mem 6" false (Interval.mem 6 i);
  check "empty" true (Interval.is_empty (Interval.make 3 2));
  check_int "length" 4 (Interval.length i);
  let j = Interval.inter i (Interval.make 4 9) in
  check "inter" true (j.Interval.lo = 4 && j.Interval.hi = 5)

let iset_of_list l = Interval.Set.of_intervals (List.map (fun (a, b) -> Interval.make a b) l)

let iset_basics () =
  let s = iset_of_list [ (1, 3); (7, 9) ] in
  check "mem 2" true (Interval.Set.mem 2 s);
  check "not mem 5" false (Interval.Set.mem 5 s);
  check_int "cardinal" 6 (Interval.Set.cardinal s);
  check "max" true (Interval.Set.max_elt s = Some 9);
  check "min" true (Interval.Set.min_elt s = Some 1);
  check "next_below 6" true (Interval.Set.next_below s 6 = Some 3);
  check "next_below 8" true (Interval.Set.next_below s 8 = Some 8);
  check "next_below 0" true (Interval.Set.next_below s 0 = None);
  (* adjacent intervals merge *)
  let m = iset_of_list [ (1, 3); (4, 6) ] in
  check_int "merged" 1 (List.length (Interval.Set.to_list m))

let iset_prop_gen =
  QCheck.Gen.(
    list_size (int_bound 4)
      (map2 (fun a len -> (a, a + len)) (int_bound 30) (int_bound 6)))

let iset_arb = QCheck.make ~print:(fun l -> QCheck.Print.(list (pair int int)) l) iset_prop_gen

let iset_inter_prop =
  QCheck.Test.make ~name:"Set.inter is pointwise conjunction" ~count:500
    (QCheck.pair iset_arb iset_arb)
    (fun (la, lb) ->
      let a = iset_of_list la and b = iset_of_list lb in
      let i = Interval.Set.inter a b in
      List.for_all
        (fun x -> Interval.Set.mem x i = (Interval.Set.mem x a && Interval.Set.mem x b))
        (List.init 40 (fun i -> i)))

let iset_union_prop =
  QCheck.Test.make ~name:"Set.union is pointwise disjunction" ~count:500
    (QCheck.pair iset_arb iset_arb)
    (fun (la, lb) ->
      let a = iset_of_list la and b = iset_of_list lb in
      let u = Interval.Set.union a b in
      List.for_all
        (fun x -> Interval.Set.mem x u = (Interval.Set.mem x a || Interval.Set.mem x b))
        (List.init 40 (fun i -> i)))

let iset_normal_form_prop =
  QCheck.Test.make ~name:"Set intervals are disjoint, sorted, non-adjacent" ~count:500 iset_arb
    (fun l ->
      let s = iset_of_list l in
      let rec ok = function
        | a :: (b :: _ as rest) -> a.Interval.hi + 1 < b.Interval.lo && ok rest
        | _ -> true
      in
      ok (Interval.Set.to_list s))

(* ------------------------------------------------------------------ *)
(* Vclock                                                              *)
(* ------------------------------------------------------------------ *)

let vclock_basics () =
  let v = Vclock.make ~dim:3 in
  check_int "zero" 0 (Vclock.get v 1);
  let v1 = Vclock.tick v ~trace:1 in
  check_int "ticked" 1 (Vclock.get v1 1);
  check_int "others zero" 0 (Vclock.get v1 0);
  let a = Vclock.of_array [| 1; 5; 2 |] and b = Vclock.of_array [| 3; 0; 2 |] in
  let m = Vclock.merge a b in
  check "merge is lub" true (Vclock.to_array m = [| 3; 5; 2 |]);
  check "leq refl" true (Vclock.leq a a);
  check "leq merge" true (Vclock.leq a m && Vclock.leq b m);
  check "not leq" false (Vclock.leq m a)

let vclock_tick_merge () =
  let cur = Vclock.of_array [| 2; 0; 0 |] in
  let incoming = Vclock.of_array [| 1; 4; 0 |] in
  let r = Vclock.tick_merge cur incoming ~trace:0 in
  check "tick_merge" true (Vclock.to_array r = [| 3; 4; 0 |])

let vclock_merge_lub_prop =
  QCheck.Test.make ~name:"merge is the least upper bound" ~count:500
    QCheck.(pair (array_of_size (QCheck.Gen.return 4) (int_bound 10)) (array_of_size (QCheck.Gen.return 4) (int_bound 10)))
    (fun (a, b) ->
      let va = Vclock.of_array a and vb = Vclock.of_array b in
      let m = Vclock.merge va vb in
      Vclock.leq va m && Vclock.leq vb m
      && Array.for_all2 (fun x y -> max x y >= 0 && Vclock.get m 0 >= 0 && x <= max x y && y <= max x y) a b
      && Vclock.to_array m = Array.map2 max a b)

let vclock_dim_mismatch () =
  let a = Vclock.make ~dim:2 and b = Vclock.make ~dim:3 in
  Alcotest.check_raises "merge" (Invalid_argument "Vclock.merge: dimension mismatch") (fun () ->
      ignore (Vclock.merge a b));
  Alcotest.check_raises "leq" (Invalid_argument "Vclock.leq: dimension mismatch") (fun () ->
      ignore (Vclock.leq a b))

let prng_errors () =
  let p = Prng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick p [||]))

let prng_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let va = Prng.bits64 a and vb = Prng.bits64 b in
  check "copies continue identically" true (va = vb)

let interval_full_and_empty_set () =
  check "empty set" true (Interval.Set.is_empty Interval.Set.empty);
  check "full set has max" true (Interval.Set.max_elt (Interval.Set.full ~max:5) = Some 5);
  check_int "cardinal of full" 6 (Interval.Set.cardinal (Interval.Set.full ~max:5));
  check "empty interval ignored" true
    (Interval.Set.is_empty (Interval.Set.of_interval (Interval.make 5 2)))

(* ------------------------------------------------------------------ *)
(* Symbol                                                              *)
(* ------------------------------------------------------------------ *)

let symbol_basics () =
  let t = Symbol.create () in
  check_int "empty" 0 (Symbol.size t);
  let a = Symbol.intern t "alpha" in
  let b = Symbol.intern t "beta" in
  check_int "dense ids" 0 a;
  check_int "dense ids" 1 b;
  check_int "size" 2 (Symbol.size t);
  check_int "intern is idempotent" a (Symbol.intern t "alpha");
  check_int "size unchanged by re-intern" 2 (Symbol.size t);
  check "roundtrip" true (Symbol.name t a = "alpha" && Symbol.name t b = "beta");
  check "lookup known" true (Symbol.lookup t "beta" = Some b);
  check "lookup unknown" true (Symbol.lookup t "gamma" = None);
  check "empty string is a valid symbol" true (Symbol.name t (Symbol.intern t "") = "")

let symbol_errors () =
  let t = Symbol.create () in
  ignore (Symbol.intern t "x");
  Alcotest.check_raises "name of unknown id" (Invalid_argument "Symbol.name: unknown id 1")
    (fun () -> ignore (Symbol.name t 1));
  Alcotest.check_raises "negative id" (Invalid_argument "Symbol.name: unknown id -1") (fun () ->
      ignore (Symbol.name t (-1)))

let symbol_roundtrip_prop =
  QCheck.Test.make ~name:"intern/name roundtrip over random strings" ~count:200
    QCheck.(small_list (string_of_size (QCheck.Gen.int_bound 8)))
    (fun strings ->
      let t = Symbol.create () in
      let ids = List.map (Symbol.intern t) strings in
      (* same string -> same id; every id resolves back to its string *)
      List.for_all2
        (fun s id -> Symbol.name t id = s && Symbol.intern t s = id)
        strings ids
      && Symbol.size t = List.length (List.sort_uniq compare strings))

let () =
  Alcotest.run "base"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick prng_different_seeds;
          Alcotest.test_case "int bounds" `Quick prng_int_bounds;
          Alcotest.test_case "split independent" `Quick prng_split_independent;
          Alcotest.test_case "bernoulli rate" `Quick prng_bernoulli_rate;
          Alcotest.test_case "shuffle permutation" `Quick prng_shuffle_permutation;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick vec_basics;
          Alcotest.test_case "bounds" `Quick vec_bounds;
          Alcotest.test_case "binary search" `Quick vec_binary_search;
          QCheck_alcotest.to_alcotest vec_binary_search_prop;
        ] );
      ( "interval",
        [
          Alcotest.test_case "interval basics" `Quick interval_basics;
          Alcotest.test_case "set basics" `Quick iset_basics;
          QCheck_alcotest.to_alcotest iset_inter_prop;
          QCheck_alcotest.to_alcotest iset_union_prop;
          QCheck_alcotest.to_alcotest iset_normal_form_prop;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick vclock_basics;
          Alcotest.test_case "tick_merge" `Quick vclock_tick_merge;
          Alcotest.test_case "dim mismatch" `Quick vclock_dim_mismatch;
          QCheck_alcotest.to_alcotest vclock_merge_lub_prop;
        ] );
      ( "symbol",
        [
          Alcotest.test_case "basics" `Quick symbol_basics;
          Alcotest.test_case "errors" `Quick symbol_errors;
          QCheck_alcotest.to_alcotest symbol_roundtrip_prop;
        ] );
      ( "errors",
        [
          Alcotest.test_case "prng errors" `Quick prng_errors;
          Alcotest.test_case "prng copy" `Quick prng_copy_independent;
          Alcotest.test_case "interval sets" `Quick interval_full_and_empty_set;
        ] );
    ]
