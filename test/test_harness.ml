(* Harness-level behaviour: the case factory, runner outcome invariants,
   engine-configuration effects visible end-to-end, and the reproduction
   helpers. *)

module Sim = Ocep_sim.Sim
module Runner = Ocep_harness.Runner
module Cases = Ocep_harness.Cases
module Repro = Ocep_harness.Repro
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let cases_factory () =
  List.iter
    (fun name ->
      let w = Cases.make name ~traces:8 ~seed:1 ~max_events:1000 in
      check (name ^ " has bodies") true (Array.length w.Workload.bodies > 0);
      check (name ^ " pattern compiles") true
        (match Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) with
        | _ -> true
        | exception _ -> false))
    Cases.names;
  (try
     ignore (Cases.make "nonsense" ~traces:8 ~seed:1 ~max_events:10);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let paper_constants () =
  check "ordering sweeps larger trace counts" true
    (Cases.paper_trace_counts "ordering" = [ 50; 100; 500 ]);
  check "others sweep 10/20/50" true (Cases.paper_trace_counts "races" = [ 10; 20; 50 ]);
  let _, med, _, _, _ = Cases.paper_fig10_us "deadlock" in
  check "paper deadlock median" true (med = 1805.)

let outcome_invariants () =
  let w = Cases.make "atomicity" ~traces:6 ~seed:3 ~max_events:8000 in
  let o = Runner.run w in
  check_int "one latency sample per terminating arrival"
    (Array.length o.Runner.latencies_us)
    (Array.length o.Runner.latencies_us);
  check "events bounded by max_events + a small overshoot" true
    (o.Runner.events >= 8000 && o.Runner.events < 8010);
  check "detected <= injected" true (o.Runner.injections_detected <= o.Runner.injections_total);
  check "coverage <= seen" true (o.Runner.covered_slots <= o.Runner.seen_slots);
  check "summary present" true (o.Runner.summary <> None);
  check "wall time recorded" true (o.Runner.wall_s > 0.)

let cutoff_margin_excludes_tail () =
  (* with a 100% margin nothing is considered *)
  let w = Cases.make "ordering" ~traces:5 ~seed:4 ~max_events:8000 in
  let o = Runner.run ~cutoff_margin:1.0 w in
  check_int "nothing considered" 0 o.Runner.injections_total

let pin_searches_matter () =
  (* without pinned searches the subset can miss coverable slots *)
  let run pin_searches =
    let poet = Ocep_poet.Poet.create ~trace_names:[| "P0"; "P1"; "P2" |] () in
    let net =
      Ocep_pattern.Compile.compile
        (Ocep_pattern.Parser.parse "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;")
    in
    let config = { Engine.default_config with Engine.pin_searches } in
    let engine = Engine.create ~config ~net ~poet () in
    let ingest raw = ignore (Ocep_poet.Poet.ingest poet raw) in
    let open Ocep_base in
    (* two As on different traces, both before the single b *)
    ingest { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal };
    ingest { Event.r_trace = 1; r_etype = "A"; r_text = ""; r_kind = Event.Internal };
    ingest { Event.r_trace = 0; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = 1 } };
    ingest { Event.r_trace = 2; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = 1 } };
    ingest { Event.r_trace = 1; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = 2 } };
    ingest { Event.r_trace = 2; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = 2 } };
    ingest { Event.r_trace = 2; r_etype = "B"; r_text = ""; r_kind = Event.Internal };
    Engine.covered_slots engine
  in
  check_int "with pins: all three slots" 3 (run true);
  check "without pins: fewer" true (run false < 3)

let node_budget_counts_aborts () =
  let poet = Ocep_poet.Poet.create ~trace_names:[| "P0"; "P1" |] () in
  let net =
    Ocep_pattern.Compile.compile
      (Ocep_pattern.Parser.parse
         "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a; B $b; C $c;\n\
          pattern := $a || $b && $b || $c && $a || $c;")
  in
  let config = { Engine.default_config with Engine.node_budget = Some 3 } in
  let engine = Engine.create ~config ~net ~poet () in
  let open Ocep_base in
  let ingest raw = ignore (Ocep_poet.Poet.ingest poet raw) in
  for _ = 1 to 10 do
    ingest { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal };
    ingest { Event.r_trace = 0; r_etype = "c"; r_text = ""; r_kind = Event.Send { msg = 0 } }
  done;
  (* C events ordered before the anchor so the search has to burn budget *)
  ingest { Event.r_trace = 1; r_etype = "C"; r_text = ""; r_kind = Event.Internal };
  ingest { Event.r_trace = 1; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = 99 } };
  ignore (Ocep_poet.Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal });
  check "aborts counted" true (Engine.aborted_searches engine >= 0)

let repro_fig3_output () =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Repro.fig3 ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check "mentions the lost slot" true (contains out "(A,P1) lost");
  check "window row" true (contains out "window");
  check "subset row" true (contains out "OCEP subset")

let scale_env_parsing () =
  (* default when unset or garbage *)
  Unix.putenv "OCEP_EVENTS" "garbage";
  Unix.putenv "OCEP_RUNS" "-3";
  let s = Repro.scale_from_env () in
  check_int "events default" 50_000 s.Repro.events;
  check_int "runs default" 2 s.Repro.runs;
  Unix.putenv "OCEP_EVENTS" "1234";
  Unix.putenv "OCEP_RUNS" "7";
  let s = Repro.scale_from_env () in
  check_int "events parsed" 1234 s.Repro.events;
  check_int "runs parsed" 7 s.Repro.runs;
  Unix.putenv "OCEP_EVENTS" "";
  Unix.putenv "OCEP_RUNS" ""

let dump_roundtrip_through_runner () =
  (* gen-style dump and reload-style run must agree on match counts *)
  let w = Cases.make "ordering" ~traces:5 ~seed:77 ~max_events:5000 in
  let names = Sim.trace_names w.Workload.sim_config in
  let file = Filename.temp_file "ocep" ".dump" in
  let oc = open_out file in
  Ocep_poet.Poet.dump_header ~trace_names:names oc;
  let _ = Sim.run w.Workload.sim_config ~sink:(fun raw -> Ocep_poet.Poet.dump_raw oc raw) ~bodies:w.Workload.bodies in
  close_out oc;
  let ic = open_in file in
  let loaded_names, raws = Ocep_poet.Poet.load ic in
  close_in ic;
  Sys.remove file;
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let poet = Ocep_poet.Poet.create ~trace_names:loaded_names () in
  let engine = Engine.create ~net ~poet () in
  List.iter (fun r -> ignore (Ocep_poet.Poet.ingest poet r)) raws;
  (* run the same workload live for comparison *)
  let w2 = Cases.make "ordering" ~traces:5 ~seed:77 ~max_events:5000 in
  let poet2 = Ocep_poet.Poet.create ~trace_names:names () in
  let engine2 = Engine.create ~net ~poet:poet2 () in
  let _ = Sim.run w2.Workload.sim_config ~sink:(fun raw -> ignore (Ocep_poet.Poet.ingest poet2 raw)) ~bodies:w2.Workload.bodies in
  check_int "same matches live and reloaded" (Engine.matches_found engine2)
    (Engine.matches_found engine);
  check_int "same reports" (List.length (Engine.reports engine2)) (List.length (Engine.reports engine))

(* Acceptance: [ocep explain <digest>] reproduces the ingest -> match
   causal chain for at least one retained report in every built-in
   workload, under the default config (provenance on). *)
let explain_every_workload () =
  List.iter
    (fun name ->
      let traces = if name = "ordering" then 12 else 6 in
      let w = Cases.make name ~traces ~seed:2 ~max_events:20_000 in
      let names = Sim.trace_names w.Workload.sim_config in
      let poet = Ocep_poet.Poet.create ~trace_names:names () in
      let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
      (* a window covering the whole run: eviction is exercised separately *)
      let config = { Engine.default_config with Engine.provenance_capacity = 32_768 } in
      let engine = Engine.create ~config ~net ~poet () in
      Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
      ignore
        (Sim.run w.Workload.sim_config
           ~sink:(fun raw -> ignore (Ocep_poet.Poet.ingest poet raw))
           ~bodies:w.Workload.bodies);
      match Engine.reports engine with
      | [] -> Alcotest.failf "%s: no retained report to explain" name
      | r :: _ ->
        let handle = List.hd (Engine.handles engine) in
        let digest =
          Runner.report_digest ~pattern_id:(Engine.Handle.id handle) r
        in
        let text = Ocep_harness.Explain.explain engine ~digest in
        let want what needle =
          check (Printf.sprintf "%s explain has %s" name what) true (contains text needle)
        in
        check (name ^ " resolves") false (contains text "no retained report");
        want "the digest" digest;
        want "bound events" "<-";
        want "provenance lines" "provenance:";
        want "direct-feed provenance" "fed directly";
        want "causal constraints" "causal constraints";
        (* prefix resolution finds the same report *)
        (match Ocep_harness.Explain.find engine ~digest:(String.sub digest 0 8) with
        | Some (_, r') ->
          check (name ^ " prefix finds same report") true
            (Runner.report_digest ~pattern_id:(Engine.Handle.id handle) r' = digest)
        | None -> Alcotest.failf "%s: prefix lookup failed" name))
    Cases.all_names

let explain_wire_provenance () =
  (* over the wire the chain carries record ids and admission verdicts *)
  let module Source = Ocep_ingest.Source in
  let module Framing = Ocep_ingest.Framing in
  let w = Cases.make "races" ~traces:6 ~seed:2 ~max_events:10_000 in
  let names = Sim.trace_names w.Workload.sim_config in
  let path = Filename.temp_file "ocep_explain" ".wire" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  let oc = open_out_bin path in
  let wr = Framing.create_writer oc ~trace_names:names in
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> ignore (Framing.write_raw wr raw))
       ~bodies:w.Workload.bodies);
  Framing.flush wr;
  close_out oc;
  let poet = Ocep_poet.Poet.create ~trace_names:names () in
  let net = Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern) in
  let engine = Engine.create ~config:Engine.default_config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  ignore (Ocep_ingest.Session.replay ~engine (Framing.create_reader ic));
  match Engine.reports engine with
  | [] -> Alcotest.fail "no retained report"
  | r :: _ ->
    let handle = List.hd (Engine.handles engine) in
    let digest = Runner.report_digest ~pattern_id:(Engine.Handle.id handle) r in
    let text = Ocep_harness.Explain.explain engine ~digest in
    check "wire record ids present" true (contains text "wire record");
    check "verdict rendered" true
      (contains text "verdict in-order" || contains text "verdict reordered");
    check "stage offsets rendered" true (contains text "decode@+")

let nearest_miss_fallback () =
  (* a pattern that can never match: the fallback names the leaf that
     failed binding last instead of a report *)
  let poet = Ocep_poet.Poet.create ~trace_names:[| "P0" |] () in
  let net =
    Ocep_pattern.Compile.compile
      (Ocep_pattern.Parser.parse
         "A := [_, Present, _];\nB := [_, Never, _];\npattern := A -> B;\n")
  in
  let engine = Engine.create ~config:Engine.default_config ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  for _ = 0 to 9 do
    ignore
      (Ocep_poet.Poet.ingest poet
         { Ocep_base.Event.r_trace = 0; r_etype = "Present"; r_text = "";
           r_kind = Ocep_base.Event.Internal })
  done;
  let text = Ocep_harness.Explain.explain engine ~digest:"feedfacefeedface" in
  check "falls back" true (contains text "no retained report");
  check "names a miss" true (contains text "nearest misses")

let () =
  Alcotest.run "harness"
    [
      ( "cases",
        [
          Alcotest.test_case "factory" `Quick cases_factory;
          Alcotest.test_case "paper constants" `Quick paper_constants;
        ] );
      ( "runner",
        [
          Alcotest.test_case "outcome invariants" `Quick outcome_invariants;
          Alcotest.test_case "cutoff margin" `Quick cutoff_margin_excludes_tail;
          Alcotest.test_case "dump/run equals live" `Slow dump_roundtrip_through_runner;
        ] );
      ( "engine config",
        [
          Alcotest.test_case "pin searches matter" `Quick pin_searches_matter;
          Alcotest.test_case "node budget" `Quick node_budget_counts_aborts;
        ] );
      ( "repro",
        [
          Alcotest.test_case "fig3 output" `Quick repro_fig3_output;
          Alcotest.test_case "scale env" `Quick scale_env_parsing;
        ] );
      ( "explain",
        [
          Alcotest.test_case "every workload" `Slow explain_every_workload;
          Alcotest.test_case "wire provenance" `Quick explain_wire_provenance;
          Alcotest.test_case "nearest-miss fallback" `Quick nearest_miss_fallback;
        ] );
    ]
